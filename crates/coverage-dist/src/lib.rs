//! # coverage-dist
//!
//! Distributed coverage maximization via **composable sketches** — the
//! extension the paper points to in its conclusion ("in an accompanied
//! paper, we also show how to apply this to distributed models"; Bateni,
//! Esfandiari, Mirrokni, *Distributed coverage maximization via
//! sketching*, the paper's `[10]`).
//!
//! The key fact (proved constructive by
//! [`ThresholdSketch::merge_from`](coverage_sketch::ThresholdSketch::merge_from)):
//! the `H≤n` sketch's retained elements are the lowest-hash prefix of the
//! elements it saw, so sketches built on *any partition of the edges*
//! merge into exactly the sketch of the whole input. That makes the
//! MapReduce-style schema trivially correct:
//!
//! 1. **Map**: each of `w` machines sketches its shard of the edges
//!    (`Õ(n)` memory each, one local pass);
//! 2. **Reduce**: merge the `w` sketches (tree or fold — associative);
//! 3. **Solve**: run greedy on the merged sketch.
//!
//! The output is *identical* (same retained elements; same family up to
//! degree-cap tie-breaking) to the single-machine Algorithm 3, which is
//! the property the companion paper's round-efficient algorithms build
//! on. This crate simulates the machines with scoped threads.
//!
//! Two executors are provided: [`distributed_k_cover`] simulates every
//! machine by re-filtering the full stream (the reference
//! implementation), while [`ParallelRunner`] partitions the stream in a
//! single pass and builds the per-machine sketches concurrently — same
//! output (a property-tested determinism contract), real speedup.
//!
//! ## Dynamic (insert/delete) workloads
//!
//! The same schema runs **deletion** workloads unchanged: signed updates
//! are routed by a hash of the edge (so a delete always lands on the
//! machine holding its insert), each machine builds a linear
//! [`DynamicSketch`](coverage_sketch::DynamicSketch), and the identical
//! generic reduce tree ([`tree_reduce_with`], via the [`Composable`]
//! trait) merges them by cell-wise addition. Because the dynamic sketch
//! is linear, its determinism contract is *stronger* than the
//! insertion-only one: the merged sketch is bit-identical to a
//! single-machine build for any partition, thread count, batch size, or
//! reduce shape. [`dynamic_distributed_k_cover`] is the serial
//! reference; [`ParallelRunner::run_dynamic`] is the parallel executor.
//!
//! ## Real processes
//!
//! [`ProcessRunner`] replaces the simulated machines with real OS
//! subprocesses: the CLI binary re-invoked in a hidden `worker` mode,
//! speaking the framed binary pipe protocol of [`proto`] over
//! stdin/stdout. Workers build local sketches over their shards and
//! ship snapshots back (binary wire frames by default); the parent runs
//! the identical [`tree_reduce_with`] reduction, so the family is
//! bit-identical to the serial and in-process parallel executors — a
//! contract that survives worker loss, because a dead worker's shards
//! are re-dispatched to survivors and `merge_from` is associative and
//! commutative.
//!
//! ## Real networks
//!
//! [`SocketRunner`] moves the same pipeline onto TCP: workers dial the
//! coordinator (`coverage worker --connect HOST:PORT`), liveness is
//! heartbeat-graded instead of EOF-based (live → suspect → dead, with
//! late joiners admitted mid-run), and shards travel as chunked streams
//! so ingest overlaps transfer. The [`net`] module docs cover the fault
//! model; the determinism contract is identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod net;
pub mod parallel;
pub mod partition;
pub mod proto;
pub mod rounds;
pub mod runner;
pub mod worker;

pub use fault::{Fault, FaultParseError, FaultPlan, SplitMix64};
pub use net::{
    DynSocketResult, HeartbeatStats, SocketResult, SocketRunStats, SocketRunner, WorkerState,
    WorkerSummary,
};
pub use parallel::{
    partition_edges, partition_updates, DynamicParallelResult, IngestMode, ParallelResult,
    ParallelRunner,
};
pub use partition::{shard_of_edge, DynamicShardedStream, ShardedStream};
pub use proto::{ChunkPayload, Message, ProtoError};
pub use rounds::{
    tree_reduce, tree_reduce_via, tree_reduce_with, BinaryTransport, Composable, FaultyTransport,
    JsonTransport, Loopback, RoundCost, RoundsReport, ShipFormat, Shipment, Transport,
};
pub use runner::{
    distributed_k_cover, distributed_k_cover_serial, dynamic_distributed_k_cover, merge_all,
    DistConfig, DistResult, DynDistResult, DynProcessResult, ProcessResult, ProcessRunner,
    RetryPolicy, RunError, WorkerCommand,
};
