//! Round-structured reduction: merge trees, transports, and
//! communication accounting.
//!
//! The companion paper (`[10]`) cares about *rounds* and *communication*,
//! the costs MapReduce charges for. A flat fold (`merge_all`) is one
//! reducer reading `w` sketches — fine in a simulation, but a real
//! cluster bounds reducer fan-in. This module simulates the standard
//! **merge tree**: machines ship [`SketchSnapshot`]s to group leaders,
//! each leader merges its `fan_in` children, and the survivors repeat —
//! `⌈log_f w⌉` rounds, each shipping at most `Õ(n)` words per machine.
//!
//! Because merging is associative and the sketch is composable (the
//! merged sketch equals the single-machine sketch regardless of grouping
//! — tested here), the tree's *shape* cannot change the answer, only the
//! cost profile. [`RoundsReport`] records both so the `exp_distributed`
//! experiment can print the rounds-vs-communication trade-off.
//!
//! The reduction is generic along two axes:
//!
//! * the [`Composable`] trait, so the same tree (and the same
//!   determinism contract) serves both sketch families — the
//!   insertion-only [`ThresholdSketch`] (associative and commutative up
//!   to the canonical min-set-id truncation) and the dynamic
//!   [`DynamicSketch`] (exactly linear, hence bit-identical under any
//!   reduction shape);
//! * the [`Transport`] trait, so *how* a child reaches its leader —
//!   pointer move, JSON text, or the compact binary frames of
//!   `coverage_sketch::wire` — is a pluggable seam shared with the
//!   subprocess executor ([`ProcessRunner`](crate::ProcessRunner)).
//!   Every transport must round-trip the full logical state, so any
//!   [`ShipFormat`] yields the identical merged sketch.

use std::cell::Cell;

use coverage_sketch::{DynamicSketch, DynamicSnapshot, SketchSnapshot, ThresholdSketch, WireError};

use crate::fault::SplitMix64;

/// A mergeable, shippable sketch — what a reduce tree needs to know.
///
/// `merge_from` must be associative (and is commutative for both
/// implementations here), so the tree's shape cannot change the merged
/// result; the ship/unship pairs must round-trip the full logical state
/// so [`ShipFormat::Json`] and [`ShipFormat::Binary`] continuously
/// exercise wire fidelity.
pub trait Composable: Sized {
    /// Merge `other` into `self` (associative).
    fn merge_from(&mut self, other: &Self);

    /// Words one wire shipment of this sketch costs (the model-level
    /// [`RoundCost`] accounting unit, independent of encoding).
    fn ship_words(&self) -> u64;

    /// Serialize the full logical state as JSON text.
    fn ship_json(&self) -> String;

    /// Restore a JSON shipment. Panics on a corrupt payload — a
    /// reducer must not silently merge garbage.
    fn unship_json(json: &str) -> Self;

    /// Serialize the full logical state as a binary wire frame
    /// (`coverage_sketch::wire`, versioned + checksummed).
    fn ship_binary(&self) -> Vec<u8>;

    /// Restore a binary shipment, reporting a corrupt frame as the
    /// decoder's typed [`WireError`] — the recoverable path a transport
    /// that detects-and-retransmits ([`FaultyTransport`]) or the
    /// subprocess protocol builds on.
    fn try_unship_binary(bytes: &[u8]) -> Result<Self, WireError>;

    /// Restore a binary shipment. Panics on a corrupt frame — inside a
    /// plain reduce tree a bad frame is a logic error;
    /// [`try_unship_binary`](Self::try_unship_binary) is the recoverable
    /// path.
    fn unship_binary(bytes: &[u8]) -> Self {
        Self::try_unship_binary(bytes).expect("binary frame must decode")
    }
}

impl Composable for ThresholdSketch {
    fn merge_from(&mut self, other: &Self) {
        ThresholdSketch::merge_from(self, other);
    }

    /// 2 words per edge (set id + element slot) plus 4 per element
    /// (key, hash, length, truncation flag).
    fn ship_words(&self) -> u64 {
        2 * self.edges_stored() as u64 + 4 * self.elements_stored() as u64
    }

    fn ship_json(&self) -> String {
        SketchSnapshot::of(self).to_json()
    }

    fn unship_json(json: &str) -> Self {
        SketchSnapshot::from_json(json)
            .expect("wire snapshot must parse")
            .restore()
    }

    fn ship_binary(&self) -> Vec<u8> {
        SketchSnapshot::of(self).encode_binary()
    }

    fn try_unship_binary(bytes: &[u8]) -> Result<Self, WireError> {
        SketchSnapshot::decode_binary(bytes).map(|snap| snap.restore())
    }
}

impl Composable for DynamicSketch {
    fn merge_from(&mut self, other: &Self) {
        DynamicSketch::merge_from(self, other);
    }

    fn ship_words(&self) -> u64 {
        DynamicSketch::ship_words(self)
    }

    fn ship_json(&self) -> String {
        DynamicSnapshot::of(self).to_json()
    }

    fn unship_json(json: &str) -> Self {
        DynamicSnapshot::from_json(json)
            .expect("wire snapshot must parse")
            .restore()
    }

    fn ship_binary(&self) -> Vec<u8> {
        DynamicSnapshot::of(self).encode_binary()
    }

    fn try_unship_binary(bytes: &[u8]) -> Result<Self, WireError> {
        DynamicSnapshot::decode_binary(bytes).map(|snap| snap.restore())
    }
}

/// One shipped sketch: the (round-tripped) sketch plus what the trip
/// cost on the wire.
pub struct Shipment<S> {
    /// The sketch after the transport's round-trip.
    pub sketch: S,
    /// Actual encoded payload bytes this shipment put on the wire
    /// (0 for in-memory transports — nothing was encoded).
    pub bytes: u64,
}

/// How a sketch travels from a child to its group leader.
///
/// A transport must be *faithful*: the delivered sketch's logical state
/// equals the input's, so the reduce tree's result is transport-
/// independent (property-tested in `tests/wire_equivalence.rs`). The
/// subprocess executor reuses the same seam: workers ship snapshots over
/// pipes with the identical binary frames [`BinaryTransport`] uses.
pub trait Transport {
    /// Ship one sketch, returning the delivered sketch and its wire cost.
    fn ship<S: Composable>(&self, sketch: S) -> Shipment<S>;
}

/// Pointer-move "transport": a shared-memory reducer. Ships nothing, so
/// [`Shipment::bytes`] is 0 by definition.
#[derive(Clone, Copy, Debug, Default)]
pub struct Loopback;

impl Transport for Loopback {
    fn ship<S: Composable>(&self, sketch: S) -> Shipment<S> {
        Shipment { sketch, bytes: 0 }
    }
}

/// JSON-text transport: snapshot → JSON string → parse → restore.
#[derive(Clone, Copy, Debug, Default)]
pub struct JsonTransport;

impl Transport for JsonTransport {
    fn ship<S: Composable>(&self, sketch: S) -> Shipment<S> {
        let json = sketch.ship_json();
        Shipment {
            bytes: json.len() as u64,
            sketch: S::unship_json(&json),
        }
    }
}

/// Binary-frame transport: snapshot → versioned checksummed frame →
/// decode → restore (the deployable encoding).
#[derive(Clone, Copy, Debug, Default)]
pub struct BinaryTransport;

impl Transport for BinaryTransport {
    fn ship<S: Composable>(&self, sketch: S) -> Shipment<S> {
        let frame = sketch.ship_binary();
        Shipment {
            bytes: frame.len() as u64,
            sketch: S::unship_binary(&frame),
        }
    }
}

/// Lossy binary transport with deterministic, seeded frame corruption —
/// the fault-injection counterpart of [`BinaryTransport`].
///
/// Each shipment encodes a binary frame and, with probability
/// `corrupt_pct`%, flips one bit of the copy that goes "on the wire".
/// The receiver decodes with [`Composable::try_unship_binary`]; a typed
/// [`WireError`] (checksum/layout mismatch) counts as a *detected*
/// corruption and triggers a retransmit of the pristine frame, so the
/// delivered sketch is always faithful and the reduce-tree result is
/// bit-identical to [`Loopback`]'s. [`Shipment::bytes`] accounts every
/// transmitted frame, including the ones corruption wasted.
#[derive(Debug)]
pub struct FaultyTransport {
    rng: Cell<SplitMix64>,
    corrupt_pct: u8,
    detected: Cell<u64>,
    retransmits: Cell<u64>,
}

impl FaultyTransport {
    /// A transport that corrupts roughly `corrupt_pct`% of frames
    /// (clamped to 100), scheduled deterministically from `seed`.
    pub fn new(seed: u64, corrupt_pct: u8) -> Self {
        FaultyTransport {
            rng: Cell::new(SplitMix64::new(seed)),
            corrupt_pct: corrupt_pct.min(100),
            detected: Cell::new(0),
            retransmits: Cell::new(0),
        }
    }

    /// Corruptions detected (typed decode error) so far.
    pub fn detected(&self) -> u64 {
        self.detected.get()
    }

    /// Pristine retransmits performed so far (equals [`detected`](Self::detected)
    /// unless a flipped bit slipped past the checksum, which the frame
    /// format is designed to make vanishingly unlikely).
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    fn next_u64(&self) -> u64 {
        let mut rng = self.rng.get();
        let x = rng.next_u64();
        self.rng.set(rng);
        x
    }
}

impl Transport for FaultyTransport {
    fn ship<S: Composable>(&self, sketch: S) -> Shipment<S> {
        let frame = sketch.ship_binary();
        let mut bytes = frame.len() as u64;
        let corrupt = !frame.is_empty()
            && self.corrupt_pct > 0
            && (self.next_u64() % 100) < u64::from(self.corrupt_pct);
        if corrupt {
            let mut wire = frame.clone();
            let r = self.next_u64();
            let idx = (r as usize) % wire.len();
            wire[idx] ^= 1 << ((r >> 32) % 8);
            match S::try_unship_binary(&wire) {
                Ok(sketch) => {
                    // The flip happened to survive decoding (e.g. it
                    // landed in checksummed-but-restored padding); trust
                    // the checksum's verdict and deliver it.
                    return Shipment { sketch, bytes };
                }
                Err(_) => {
                    self.detected.set(self.detected.get() + 1);
                    self.retransmits.set(self.retransmits.get() + 1);
                    bytes += frame.len() as u64;
                }
            }
        }
        Shipment {
            bytes,
            sketch: S::unship_binary(&frame),
        }
    }
}

/// Cost accounting of one reduction round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundCost {
    /// Sketches alive at the start of the round.
    pub sketches_in: usize,
    /// Sketches alive after the round (one per group).
    pub sketches_out: usize,
    /// Total words shipped in this round (snapshot edges ×2 + per-element
    /// headers ×4; leaders receive, non-leaders send). A model-level
    /// count, identical across every [`ShipFormat`].
    pub words_shipped: u64,
    /// Total *encoded payload* bytes shipped in this round — the actual
    /// wire cost of the chosen format: JSON text length for
    /// [`ShipFormat::Json`], binary frame length for
    /// [`ShipFormat::Binary`], and 0 for [`ShipFormat::InMemory`]
    /// (nothing is encoded; "shipping" is a pointer move).
    pub bytes_shipped: u64,
}

/// Full report of a tree reduction.
#[derive(Clone, Debug)]
pub struct RoundsReport {
    /// Per-round costs, in order.
    pub rounds: Vec<RoundCost>,
}

impl RoundsReport {
    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total communication across rounds, in model words.
    pub fn total_words(&self) -> u64 {
        self.rounds.iter().map(|r| r.words_shipped).sum()
    }

    /// Largest single-round shipment, in model words.
    pub fn peak_round_words(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.words_shipped)
            .max()
            .unwrap_or(0)
    }

    /// Total encoded payload bytes across rounds (0 when everything
    /// moved in memory).
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes_shipped).sum()
    }

    /// Largest single-round encoded shipment, in bytes.
    pub fn peak_round_bytes(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.bytes_shipped)
            .max()
            .unwrap_or(0)
    }
}

/// How non-leader sketches travel to their group leader during a tree
/// reduction. Merging is shape- and format-independent, so the choice
/// affects only the fidelity-vs-speed of the *simulation* and the
/// [`RoundCost::bytes_shipped`] accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShipFormat {
    /// Full wire round-trip per ship: snapshot → JSON text → parse →
    /// restore → merge. Continuously exercises serialization fidelity;
    /// what [`tree_reduce`] uses.
    #[default]
    Json,
    /// Compact binary round-trip per ship: snapshot → versioned,
    /// checksummed frame → decode → restore → merge. The deployable
    /// encoding — what the subprocess executor ships over its pipes.
    Binary,
    /// Direct in-memory merge (a shared-memory reducer, where "shipping"
    /// is a pointer move). Same merges, same word accounting, zero
    /// `bytes_shipped` — what the parallel executor uses on its hot
    /// path.
    InMemory,
}

impl ShipFormat {
    /// Parse a CLI spelling (`json` / `binary` / `memory`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "json" => Some(ShipFormat::Json),
            "binary" | "bin" => Some(ShipFormat::Binary),
            "memory" | "inmemory" => Some(ShipFormat::InMemory),
            _ => None,
        }
    }
}

/// Reduce `sketches` with a merge tree of the given fan-in (`≥ 2`).
///
/// Every non-leader serializes its sketch through the snapshot wire
/// format (exactly what a real deployment would ship) and the group
/// leader merges the restored sketches — so this path also continuously
/// exercises serialization fidelity. Use [`tree_reduce_with`] to pick a
/// different [`ShipFormat`]. Generic over [`Composable`]: the same tree
/// reduces insertion-only and dynamic sketches.
pub fn tree_reduce<S: Composable>(sketches: Vec<S>, fan_in: usize) -> (S, RoundsReport) {
    tree_reduce_with(sketches, fan_in, ShipFormat::Json)
}

/// [`tree_reduce`] with an explicit [`ShipFormat`].
pub fn tree_reduce_with<S: Composable>(
    sketches: Vec<S>,
    fan_in: usize,
    format: ShipFormat,
) -> (S, RoundsReport) {
    match format {
        ShipFormat::Json => tree_reduce_via(sketches, fan_in, &JsonTransport),
        ShipFormat::Binary => tree_reduce_via(sketches, fan_in, &BinaryTransport),
        ShipFormat::InMemory => tree_reduce_via(sketches, fan_in, &Loopback),
    }
}

/// [`tree_reduce`] over an explicit [`Transport`] — the fully general
/// seam ([`tree_reduce_with`] is this with a format-chosen transport).
pub fn tree_reduce_via<S: Composable, T: Transport>(
    mut sketches: Vec<S>,
    fan_in: usize,
    transport: &T,
) -> (S, RoundsReport) {
    assert!(fan_in >= 2, "fan-in must be at least 2");
    assert!(!sketches.is_empty(), "need at least one sketch");
    let mut rounds = Vec::new();
    while sketches.len() > 1 {
        let in_count = sketches.len();
        let mut shipped = 0u64;
        let mut bytes = 0u64;
        let mut next: Vec<S> = Vec::with_capacity(in_count.div_ceil(fan_in));
        let mut iter = sketches.into_iter();
        // Groups take ownership: leaders move to the next round instead
        // of being cloned (a clone would copy the whole entry map).
        while let Some(mut leader) = iter.next() {
            for child in iter.by_ref().take(fan_in - 1) {
                shipped += child.ship_words();
                let delivered = transport.ship(child);
                bytes += delivered.bytes;
                leader.merge_from(&delivered.sketch);
            }
            next.push(leader);
        }
        rounds.push(RoundCost {
            sketches_in: in_count,
            sketches_out: next.len(),
            words_shipped: shipped,
            bytes_shipped: bytes,
        });
        sketches = next;
    }
    (
        sketches.pop().expect("one sketch remains"),
        RoundsReport { rounds },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::Edge;
    use coverage_sketch::SketchParams;
    use coverage_stream::{EdgeStream, VecStream};

    fn build_shards(w: usize, budget: usize) -> (Vec<ThresholdSketch>, ThresholdSketch) {
        let params = SketchParams::with_budget(6, 3, 0.4, budget);
        let seed = 77;
        let mut edges = Vec::new();
        for s in 0..6u32 {
            for e in 0..800u64 {
                if !(e * 7 + s as u64).is_multiple_of(3) {
                    edges.push(Edge::new(s, e));
                }
            }
        }
        let full = VecStream::new(6, edges);
        let mut single = ThresholdSketch::new(params, seed);
        let mut shards: Vec<ThresholdSketch> =
            (0..w).map(|_| ThresholdSketch::new(params, seed)).collect();
        let mut i = 0usize;
        full.for_each(&mut |e| {
            single.update(e);
            shards[i % w].update(e);
            i += 1;
        });
        (shards, single)
    }

    fn keys(s: &ThresholdSketch) -> Vec<u64> {
        let mut v: Vec<u64> = s.retained().map(|(k, _, _)| k).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn tree_equals_single_machine_for_any_fan_in() {
        let (shards, single) = build_shards(9, 150);
        for fan_in in [2usize, 3, 9] {
            let (merged, report) = tree_reduce(shards.clone(), fan_in);
            assert_eq!(
                keys(&merged),
                keys(&single),
                "fan_in={fan_in}: tree reduce must be shape-independent"
            );
            let expected_rounds = match fan_in {
                2 => 4, // 9 → 5 → 3 → 2 → 1
                3 => 2, // 9 → 3 → 1
                _ => 1, // 9 → 1
            };
            assert_eq!(report.num_rounds(), expected_rounds, "fan_in={fan_in}");
        }
    }

    #[test]
    fn ship_formats_agree() {
        let (shards, _) = build_shards(7, 120);
        let (via_json, json_rounds) = tree_reduce_with(shards.clone(), 3, ShipFormat::Json);
        let (via_binary, bin_rounds) = tree_reduce_with(shards.clone(), 3, ShipFormat::Binary);
        let (in_memory, mem_rounds) = tree_reduce_with(shards, 3, ShipFormat::InMemory);
        assert_eq!(keys(&via_json), keys(&in_memory));
        assert_eq!(keys(&via_binary), keys(&in_memory));
        assert_eq!(json_rounds.num_rounds(), mem_rounds.num_rounds());
        assert_eq!(json_rounds.total_words(), mem_rounds.total_words());
        assert_eq!(bin_rounds.total_words(), mem_rounds.total_words());
    }

    #[test]
    fn bytes_accounting_tracks_the_format() {
        let (shards, _) = build_shards(6, 120);
        let (_, json_rounds) = tree_reduce_with(shards.clone(), 2, ShipFormat::Json);
        let (_, bin_rounds) = tree_reduce_with(shards.clone(), 2, ShipFormat::Binary);
        let (_, mem_rounds) = tree_reduce_with(shards, 2, ShipFormat::InMemory);
        // In-memory ships no encoded payload at all — 0 by definition.
        assert_eq!(mem_rounds.total_bytes(), 0);
        // Wire formats report their actual encoded sizes, and the binary
        // frames are materially smaller than the JSON text.
        assert!(json_rounds.total_bytes() > 0);
        assert!(bin_rounds.total_bytes() > 0);
        assert!(
            bin_rounds.total_bytes() * 2 < json_rounds.total_bytes(),
            "binary {} vs json {}",
            bin_rounds.total_bytes(),
            json_rounds.total_bytes()
        );
        // Model-word accounting is format-independent.
        assert_eq!(json_rounds.total_words(), bin_rounds.total_words());
        for r in &mem_rounds.rounds {
            assert_eq!(r.bytes_shipped, 0);
        }
    }

    #[test]
    fn explicit_transport_seam_matches_formats() {
        let (shards, _) = build_shards(5, 100);
        let (a, ar) = tree_reduce_via(shards.clone(), 2, &BinaryTransport);
        let (b, br) = tree_reduce_with(shards, 2, ShipFormat::Binary);
        assert_eq!(keys(&a), keys(&b));
        assert_eq!(ar.total_bytes(), br.total_bytes());
    }

    #[test]
    fn corrupted_frames_are_detected_and_retransmitted() {
        let (shards, single) = build_shards(6, 120);
        // 100% corruption: every shipped frame gets one bit flipped.
        let faulty = FaultyTransport::new(0xBAD5EED, 100);
        let (merged, report) = tree_reduce_via(shards.clone(), 2, &faulty);
        // The checksum catches the flip, the pristine frame is
        // retransmitted, and the reduce result is bit-identical to an
        // in-memory reduction.
        assert_eq!(keys(&merged), keys(&single));
        assert!(faulty.detected() > 0, "no corruption was ever detected");
        assert_eq!(faulty.detected(), faulty.retransmits());
        // Wasted retransmits show up in the byte accounting.
        let (_, clean_report) = tree_reduce_via(shards, 2, &BinaryTransport);
        assert!(report.total_bytes() > clean_report.total_bytes());
    }

    #[test]
    fn faulty_transport_schedule_is_seed_deterministic() {
        let (shards, _) = build_shards(5, 100);
        let a = FaultyTransport::new(42, 35);
        let b = FaultyTransport::new(42, 35);
        let (ka, ra) = tree_reduce_via(shards.clone(), 2, &a);
        let (kb, rb) = tree_reduce_via(shards, 2, &b);
        assert_eq!(keys(&ka), keys(&kb));
        assert_eq!(a.detected(), b.detected());
        assert_eq!(ra.total_bytes(), rb.total_bytes());
    }

    #[test]
    fn round_counts_telescope() {
        let (shards, _) = build_shards(8, 100);
        let (_, report) = tree_reduce(shards, 2);
        for w in report.rounds.windows(2) {
            assert_eq!(w[0].sketches_out, w[1].sketches_in);
        }
        assert_eq!(report.rounds.first().unwrap().sketches_in, 8);
        assert_eq!(report.rounds.last().unwrap().sketches_out, 1);
    }

    #[test]
    fn communication_bounded_by_sketch_budget() {
        let (shards, _) = build_shards(6, 120);
        let params_max = shards[0].params().max_edges() as u64;
        let w = shards.len() as u64;
        let (_, report) = tree_reduce(shards, 2);
        // Every shipment is one sketch ≤ budget edges → ≤ 6·budget words.
        assert!(
            report.peak_round_words() <= w * 6 * params_max,
            "round shipped more than all sketches combined"
        );
        assert!(report.total_words() > 0);
    }

    #[test]
    fn single_sketch_needs_no_rounds() {
        let (shards, single) = build_shards(1, 80);
        let (merged, report) = tree_reduce(shards, 2);
        assert_eq!(report.num_rounds(), 0);
        assert_eq!(report.total_words(), 0);
        assert_eq!(report.total_bytes(), 0);
        assert_eq!(keys(&merged), keys(&single));
    }

    #[test]
    #[should_panic(expected = "fan-in must be at least 2")]
    fn fan_in_one_rejected() {
        let (shards, _) = build_shards(2, 50);
        tree_reduce(shards, 1);
    }

    #[test]
    fn higher_fan_in_fewer_rounds_same_total() {
        let (shards, _) = build_shards(16, 100);
        let (_, narrow) = tree_reduce(shards.clone(), 2);
        let (_, wide) = tree_reduce(shards, 4);
        assert!(narrow.num_rounds() > wide.num_rounds());
        // Total communication is within small factors: every reduction
        // ships w−1 sketches overall regardless of tree shape (sizes vary
        // as merges compact entries).
        let ratio = narrow.total_words() as f64 / wide.total_words().max(1) as f64;
        assert!((0.3..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ship_format_parses_cli_spellings() {
        assert_eq!(ShipFormat::parse("json"), Some(ShipFormat::Json));
        assert_eq!(ShipFormat::parse("binary"), Some(ShipFormat::Binary));
        assert_eq!(ShipFormat::parse("bin"), Some(ShipFormat::Binary));
        assert_eq!(ShipFormat::parse("memory"), Some(ShipFormat::InMemory));
        assert_eq!(ShipFormat::parse("carrier-pigeon"), None);
    }
}
