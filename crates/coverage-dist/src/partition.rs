//! Edge partitioning: deterministic shard assignment and per-shard
//! stream views.
//!
//! Edges are routed to shards by a hash of the whole edge (set **and**
//! element), so neither sets nor elements are co-located — the hardest
//! placement for a coverage algorithm and the cleanest test of sketch
//! composability (every machine sees random fragments of every set).

use coverage_core::Edge;
use coverage_hash::mix64;
use coverage_stream::EdgeStream;

/// Deterministic shard of an edge among `shards` machines.
#[inline]
pub fn shard_of_edge(e: Edge, shards: usize, seed: u64) -> usize {
    let h = mix64(mix64(e.set.0 as u64 ^ seed) ^ e.element.0);
    ((h as u128 * shards as u128) >> 64) as usize
}

/// The sub-stream of edges routed to one shard.
///
/// In a real deployment each machine reads only its own shard; the
/// simulation filters the full stream, which costs the *harness* extra
/// passes but charges each simulated machine only its own edges.
pub struct ShardedStream<'a> {
    inner: &'a dyn EdgeStream,
    shard: usize,
    shards: usize,
    seed: u64,
}

impl<'a> ShardedStream<'a> {
    /// View of `shard` (0-based) among `shards` machines.
    pub fn new(inner: &'a dyn EdgeStream, shard: usize, shards: usize, seed: u64) -> Self {
        assert!(shards >= 1 && shard < shards);
        ShardedStream {
            inner,
            shard,
            shards,
            seed,
        }
    }
}

impl EdgeStream for ShardedStream<'_> {
    fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }

    fn for_each(&self, f: &mut dyn FnMut(Edge)) {
        self.inner.for_each(&mut |e| {
            if shard_of_edge(e, self.shards, self.seed) == self.shard {
                f(e);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_stream::VecStream;

    fn edges(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::new((i % 7) as u32, i * 3)).collect()
    }

    #[test]
    fn shards_partition_the_stream() {
        let all = edges(1000);
        let stream = VecStream::new(7, all.clone());
        let shards = 4;
        let mut seen: Vec<Edge> = Vec::new();
        for s in 0..shards {
            let view = ShardedStream::new(&stream, s, shards, 9);
            view.for_each(&mut |e| seen.push(e));
        }
        let mut want = all;
        want.sort();
        seen.sort();
        assert_eq!(seen, want, "shards must partition exactly");
    }

    #[test]
    fn shards_are_balanced() {
        let stream = VecStream::new(7, edges(10_000));
        let shards = 5;
        let mut counts = vec![0usize; shards];
        for (s, count) in counts.iter_mut().enumerate() {
            ShardedStream::new(&stream, s, shards, 3).for_each(&mut |_| *count += 1);
        }
        for &c in &counts {
            assert!(
                (1_600..=2_400).contains(&c),
                "imbalanced shard sizes: {counts:?}"
            );
        }
    }

    #[test]
    fn sharding_is_seed_deterministic() {
        let e = Edge::new(3u32, 77u64);
        assert_eq!(shard_of_edge(e, 8, 1), shard_of_edge(e, 8, 1));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_shard() {
        let stream = VecStream::new(1, vec![]);
        ShardedStream::new(&stream, 3, 3, 0);
    }
}
