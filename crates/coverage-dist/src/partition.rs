//! Edge partitioning: deterministic shard assignment and per-shard
//! stream views.
//!
//! Edges are routed to shards by a hash of the whole edge (set **and**
//! element), so neither sets nor elements are co-located — the hardest
//! placement for a coverage algorithm and the cleanest test of sketch
//! composability (every machine sees random fragments of every set).
//! Because assignment is a pure function of the edge (never of arrival
//! history or sign), replays route identically and a deletion always
//! lands on the shard holding its insertion — the partitioning half of
//! the executors' determinism contract.

use coverage_core::Edge;
use coverage_hash::mix64;
use coverage_stream::{DynamicEdgeStream, EdgeStream, SignedEdge};

/// Deterministic shard of an edge among `shards` machines.
#[inline]
pub fn shard_of_edge(e: Edge, shards: usize, seed: u64) -> usize {
    let h = mix64(mix64(e.set.0 as u64 ^ seed) ^ e.element.0);
    ((h as u128 * shards as u128) >> 64) as usize
}

/// The sub-stream of edges routed to one shard.
///
/// In a real deployment each machine reads only its own shard; the
/// simulation filters the full stream, which costs the *harness* extra
/// passes but charges each simulated machine only its own edges.
pub struct ShardedStream<'a> {
    inner: &'a dyn EdgeStream,
    shard: usize,
    shards: usize,
    seed: u64,
}

impl<'a> ShardedStream<'a> {
    /// View of `shard` (0-based) among `shards` machines.
    pub fn new(inner: &'a dyn EdgeStream, shard: usize, shards: usize, seed: u64) -> Self {
        assert!(shards >= 1 && shard < shards);
        ShardedStream {
            inner,
            shard,
            shards,
            seed,
        }
    }
}

impl EdgeStream for ShardedStream<'_> {
    fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }

    /// A scaled estimate: the shard holds ≈ `1/shards` of the inner
    /// stream. Forwarding the inner hint unscaled would over-report every
    /// shard's edge count by a factor of `shards` in diagnostics; the
    /// hint contract allows an estimate, not an exact count.
    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint().map(|n| n.div_ceil(self.shards))
    }

    fn for_each(&self, f: &mut dyn FnMut(Edge)) {
        self.inner.for_each(&mut |e| {
            if shard_of_edge(e, self.shards, self.seed) == self.shard {
                f(e);
            }
        });
    }
}

/// The sub-stream of **signed** updates routed to one shard — the
/// dynamic counterpart of [`ShardedStream`].
///
/// Routing ignores the sign: an edge's insert and its later delete hash
/// identically, so both land on the same machine and the machine's
/// local sketch nets them out. (Routing by update would split the pair
/// and break every machine's view of its own sub-multiset.)
pub struct DynamicShardedStream<'a> {
    inner: &'a dyn DynamicEdgeStream,
    shard: usize,
    shards: usize,
    seed: u64,
}

impl<'a> DynamicShardedStream<'a> {
    /// View of `shard` (0-based) among `shards` machines.
    pub fn new(inner: &'a dyn DynamicEdgeStream, shard: usize, shards: usize, seed: u64) -> Self {
        assert!(shards >= 1 && shard < shards);
        DynamicShardedStream {
            inner,
            shard,
            shards,
            seed,
        }
    }
}

impl DynamicEdgeStream for DynamicShardedStream<'_> {
    fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }

    /// Scaled like [`ShardedStream::len_hint`]: the shard sees ≈
    /// `1/shards` of the inner stream's update events.
    fn update_len_hint(&self) -> Option<usize> {
        self.inner
            .update_len_hint()
            .map(|n| n.div_ceil(self.shards))
    }

    /// Net surviving edges, also per-shard scaled (deletions are
    /// co-located with their inserts, so the shard's net is ≈ the global
    /// net over `shards`).
    fn net_len_hint(&self) -> Option<usize> {
        self.inner.net_len_hint().map(|n| n.div_ceil(self.shards))
    }

    fn for_each_update(&self, f: &mut dyn FnMut(SignedEdge)) {
        self.inner.for_each_update(&mut |u| {
            if shard_of_edge(u.edge, self.shards, self.seed) == self.shard {
                f(u);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_stream::VecStream;

    fn edges(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::new((i % 7) as u32, i * 3)).collect()
    }

    #[test]
    fn shards_partition_the_stream() {
        let all = edges(1000);
        let stream = VecStream::new(7, all.clone());
        let shards = 4;
        let mut seen: Vec<Edge> = Vec::new();
        for s in 0..shards {
            let view = ShardedStream::new(&stream, s, shards, 9);
            view.for_each(&mut |e| seen.push(e));
        }
        let mut want = all;
        want.sort();
        seen.sort();
        assert_eq!(seen, want, "shards must partition exactly");
    }

    #[test]
    fn shards_are_balanced() {
        let stream = VecStream::new(7, edges(10_000));
        let shards = 5;
        let mut counts = vec![0usize; shards];
        for (s, count) in counts.iter_mut().enumerate() {
            ShardedStream::new(&stream, s, shards, 3).for_each(&mut |_| *count += 1);
        }
        for &c in &counts {
            assert!(
                (1_600..=2_400).contains(&c),
                "imbalanced shard sizes: {counts:?}"
            );
        }
    }

    #[test]
    fn sharding_is_seed_deterministic() {
        let e = Edge::new(3u32, 77u64);
        assert_eq!(shard_of_edge(e, 8, 1), shard_of_edge(e, 8, 1));
    }

    #[test]
    fn len_hint_is_scaled_not_forwarded() {
        let stream = VecStream::new(7, edges(1000));
        assert_eq!(stream.len_hint(), Some(1000));
        let view = ShardedStream::new(&stream, 0, 4, 9);
        assert_eq!(view.len_hint(), Some(250), "hint must be per-shard scaled");
        // A hint-less inner stream stays hint-less.
        struct NoHint;
        impl EdgeStream for NoHint {
            fn num_sets(&self) -> usize {
                1
            }
            fn for_each(&self, _f: &mut dyn FnMut(Edge)) {}
        }
        assert_eq!(ShardedStream::new(&NoHint, 0, 4, 9).len_hint(), None);
    }

    #[test]
    fn shard_distribution_is_chi_square_uniform() {
        // Chi-square goodness-of-fit of shard_of_edge against uniform,
        // over several shard counts and seeds. With df = shards−1 and
        // 20_000 samples, a fair hash stays far below the 0.999 quantile
        // (≈ df + 4.9·√df for the df range used here).
        let all = edges(20_000);
        for &shards in &[2usize, 5, 8, 16] {
            for seed in [0u64, 3, 0xDEAD] {
                let mut counts = vec![0u64; shards];
                for &e in &all {
                    counts[shard_of_edge(e, shards, seed)] += 1;
                }
                let expected = all.len() as f64 / shards as f64;
                let chi2: f64 = counts
                    .iter()
                    .map(|&c| {
                        let d = c as f64 - expected;
                        d * d / expected
                    })
                    .sum();
                let df = (shards - 1) as f64;
                let limit = df + 4.9 * df.sqrt() + 6.0;
                assert!(
                    chi2 < limit,
                    "shards={shards} seed={seed}: chi2 {chi2:.1} over limit {limit:.1} ({counts:?})"
                );
            }
        }
    }

    #[test]
    fn assignment_invariant_under_shard_count_preserving_replays() {
        // Replaying the stream (any enumeration order) must route every
        // edge to the same shard as long as (shards, seed) is unchanged:
        // assignment is a pure function of the edge, not of arrival
        // history.
        let mut all = edges(5_000);
        let shards = 6;
        let seed = 41;
        let forward: Vec<usize> = all
            .iter()
            .map(|&e| shard_of_edge(e, shards, seed))
            .collect();
        all.reverse();
        let backward: Vec<usize> = all
            .iter()
            .map(|&e| shard_of_edge(e, shards, seed))
            .collect();
        let forward_rev: Vec<usize> = forward.into_iter().rev().collect();
        assert_eq!(forward_rev, backward);
        // And a different seed genuinely reshuffles (sanity that the
        // invariance above isn't vacuous).
        let moved = all
            .iter()
            .filter(|&&e| shard_of_edge(e, shards, seed) != shard_of_edge(e, shards, seed + 1))
            .count();
        assert!(moved > all.len() / 2, "seed change moved only {moved}");
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_shard() {
        let stream = VecStream::new(1, vec![]);
        ShardedStream::new(&stream, 3, 3, 0);
    }

    #[test]
    fn dynamic_shards_partition_updates_and_colocate_deletes() {
        use coverage_stream::{SignedEdge, VecDynamicStream};
        let mut updates = Vec::new();
        for e in edges(600) {
            updates.push(SignedEdge::insert(e));
        }
        for e in edges(600).into_iter().step_by(3) {
            updates.push(SignedEdge::delete(e));
        }
        let stream = VecDynamicStream::new(7, updates.clone());
        let shards = 4;
        let mut seen: Vec<SignedEdge> = Vec::new();
        for s in 0..shards {
            let view = DynamicShardedStream::new(&stream, s, shards, 9);
            let mut local: Vec<SignedEdge> = Vec::new();
            view.for_each_update(&mut |u| local.push(u));
            // Co-location: every delete in this shard has its insert here.
            for u in &local {
                if u.kind == coverage_stream::UpdateKind::Delete {
                    assert!(
                        local.iter().any(|v| {
                            v.edge == u.edge && v.kind == coverage_stream::UpdateKind::Insert
                        }),
                        "delete of {:?} arrived without its insert",
                        u.edge
                    );
                }
            }
            seen.extend(local);
        }
        assert_eq!(seen.len(), updates.len(), "shards must partition exactly");
    }

    #[test]
    fn dynamic_shard_hints_are_scaled() {
        use coverage_stream::{SignedEdge, VecDynamicStream};
        let updates: Vec<SignedEdge> = edges(100)
            .into_iter()
            .map(SignedEdge::insert)
            .chain(edges(100).into_iter().take(20).map(SignedEdge::delete))
            .collect();
        let stream = VecDynamicStream::new(7, updates);
        assert_eq!(stream.update_len_hint(), Some(120));
        assert_eq!(stream.net_len_hint(), Some(80));
        let view = DynamicShardedStream::new(&stream, 0, 4, 3);
        assert_eq!(view.update_len_hint(), Some(30));
        assert_eq!(view.net_len_hint(), Some(20));
    }

    #[test]
    fn chunking_composes_with_sharding_without_rescaling_hints() {
        // Regression: inserting a chunk-granularity adapter anywhere in a
        // shard pipeline must leave every hint exactly as if the adapter
        // were absent — chunking changes delivery granularity, never the
        // edge count. (A scaled or dropped hint here double-counts the
        // shard division in diagnostics.)
        use coverage_stream::ChunkedStream;
        let stream = VecStream::new(7, edges(1000));
        for chunk in [1usize, 64, 4096] {
            // Chunk outside the shard view…
            let sharded = ShardedStream::new(&stream, 0, 4, 9);
            let outer = ChunkedStream::new(&sharded, chunk);
            assert_eq!(outer.len_hint(), sharded.len_hint(), "chunk={chunk}");
            assert_eq!(outer.len_hint(), Some(250));
            // …and inside it: the shard scaling applies exactly once.
            let chunked = ChunkedStream::new(&stream, chunk);
            let inner = ShardedStream::new(&chunked, 0, 4, 9);
            assert_eq!(inner.len_hint(), Some(250), "chunk={chunk}");
        }
    }

    #[test]
    fn dynamic_chunking_composes_with_sharding_without_rescaling_hints() {
        use coverage_stream::{ChunkedDynamicStream, SignedEdge, VecDynamicStream};
        let updates: Vec<SignedEdge> = edges(100)
            .into_iter()
            .map(SignedEdge::insert)
            .chain(edges(100).into_iter().take(20).map(SignedEdge::delete))
            .collect();
        let stream = VecDynamicStream::new(7, updates);
        for chunk in [1usize, 32] {
            let sharded = DynamicShardedStream::new(&stream, 0, 4, 3);
            let outer = ChunkedDynamicStream::new(&sharded, chunk);
            assert_eq!(outer.update_len_hint(), Some(30), "chunk={chunk}");
            assert_eq!(outer.net_len_hint(), Some(20), "chunk={chunk}");
            let chunked = ChunkedDynamicStream::new(&stream, chunk);
            let inner = DynamicShardedStream::new(&chunked, 0, 4, 3);
            assert_eq!(inner.update_len_hint(), Some(30), "chunk={chunk}");
            assert_eq!(inner.net_len_hint(), Some(20), "chunk={chunk}");
        }
    }
}
