//! True parallel execution of the distributed k-cover pipeline.
//!
//! [`distributed_k_cover`](crate::runner::distributed_k_cover) *simulates*
//! `w` machines but pays two prices the paper's model does not charge:
//! every machine re-filters the **entire** stream through its
//! [`ShardedStream`](crate::partition::ShardedStream) view (`O(w·|E|)`
//! harness work), and the per-machine builds, while spawned on scoped
//! threads, each re-walk the full input. [`ParallelRunner`] removes both
//! costs:
//!
//! 1. **Partition** — one batched pass over the stream routes every edge
//!    into its shard's buffer (`O(|E|)` total, [`shard_of_edge`]
//!    assignment identical to the sequential simulation);
//! 2. **Map** — up to `threads` workers build the per-machine
//!    [`ThresholdSketch`]es concurrently, each consuming its
//!    materialized buffer through the monomorphic
//!    [`ThresholdSketch::update_batch`] hot loop;
//! 3. **Reduce** — the local sketches are tree-merged by
//!    [`tree_reduce_with`]; the default
//!    [`ShipFormat::InMemory`] merges directly (a shared-memory
//!    reducer), while [`ShipFormat::Json`] routes every ship through the
//!    full [`SketchSnapshot`](coverage_sketch::SketchSnapshot) wire
//!    round-trip;
//! 4. **Solve** — the merged sketch is exported as a packed CSR view
//!    (`ThresholdSketch::csr_view`, no rebuild) and solved by the exact
//!    decremental bucket-queue greedy, as in Algorithm 3 (the engine is
//!    trace-identical to the lazy reference).
//!
//! ## Determinism contract
//!
//! For the same [`DistConfig`] (machines, seed, sizing) the parallel
//! runner selects the **identical cover** — the same [`SetId`] sequence —
//! as the sequential simulation, for any thread count, batch size, or
//! reduce fan-in. Two properties make this provable rather than
//! incidental: shard assignment and per-shard edge order are independent
//! of the execution schedule (each shard's buffer preserves arrival
//! order), and sketch merging is associative *and* commutative even when
//! the degree cap binds (canonical min-id truncation — see
//! [`ThresholdSketch::merge_from`]). The contract is property-tested
//! across workload generators in this crate and in the workspace-level
//! suite.

use std::time::Instant;

use coverage_core::offline::bucket_greedy_k_cover;
use coverage_core::{Edge, SetId};
use coverage_sketch::{DynamicSketch, SketchBank, SketchParams, ThresholdSketch};
use coverage_stream::{DynamicEdgeStream, EdgeStream, SignedEdge, SpaceReport};

use crate::partition::shard_of_edge;
use crate::rounds::{tree_reduce_with, RoundsReport, ShipFormat};
use crate::runner::{panic_message, DistConfig, RunError};

/// Default partition batch size: large enough to amortize virtual
/// dispatch, small enough to stay cache-resident.
pub const DEFAULT_BATCH: usize = 1 << 12;

/// Default reduce fan-in (mirrors a small MapReduce reducer group).
pub const DEFAULT_FAN_IN: usize = 4;

/// Bounded depth of each pipeline worker's chunk channel, in chunks.
/// Deep enough to ride out scheduling hiccups; shallow enough that a
/// slow worker exerts backpressure on the feeder instead of buffering
/// its whole shard (which would silently reintroduce the two-barrier
/// schedule's memory profile).
pub const PIPELINE_DEPTH: usize = 8;

/// How a [`ParallelRunner`] schedules partitioning relative to sketch
/// building.
///
/// Both modes produce **bit-identical** results — shard assignment,
/// per-shard arrival order, and the sketches' batch-size invariance are
/// all schedule-independent (differentially stress-tested in
/// `tests/pipeline_equivalence.rs`); the mode is purely a wall-clock /
/// memory-profile knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestMode {
    /// Partitioning **overlaps** building (the default): the caller
    /// thread routes edges into per-shard chunk buffers and ships each
    /// filled chunk over its owning worker's bounded channel
    /// ([`PIPELINE_DEPTH`]), so workers ingest while the stream is
    /// still being read and no shard is ever fully materialized by the
    /// feeder.
    Pipelined,
    /// The original two-phase schedule: materialize every shard buffer
    /// ([`partition_edges`]), then build — a barrier between the
    /// phases. Retained as the differential baseline and for callers
    /// that want the partition/map phase split measured separately.
    TwoBarrier,
}

/// Parallel sharded executor for the distributed k-cover pipeline.
#[derive(Clone, Copy, Debug)]
pub struct ParallelRunner {
    cfg: DistConfig,
    threads: usize,
    fan_in: usize,
    batch: usize,
    ship: ShipFormat,
    ingest: IngestMode,
}

/// Result of a [`ParallelRunner`] run: the sequential
/// [`DistResult`](crate::runner::DistResult) fields plus the reduce-round
/// accounting and wall-clock phase breakdown.
#[derive(Clone, Debug)]
pub struct ParallelResult {
    /// The selected family (identical to the sequential runner's).
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage.
    pub estimated_coverage: f64,
    /// Per-machine space reports.
    pub per_machine: Vec<SpaceReport>,
    /// The merged sketch's final size (edges).
    pub merged_edges: usize,
    /// Tree-reduce round/communication accounting.
    pub rounds: RoundsReport,
    /// Worker threads actually used (≤ requested, ≤ machines).
    pub threads_used: usize,
    /// Wall-clock of the partition pass, in nanoseconds.
    pub partition_ns: u64,
    /// Wall-clock of the concurrent map phase, in nanoseconds.
    pub map_ns: u64,
    /// Wall-clock of reduce + solve, in nanoseconds.
    pub reduce_solve_ns: u64,
}

impl ParallelResult {
    /// Total wall-clock across the three phases, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.partition_ns + self.map_ns + self.reduce_solve_ns
    }
}

/// Result of a [`ParallelRunner::run_dynamic`] run: the dynamic
/// counterpart of [`ParallelResult`], reporting the recovered sample
/// instead of merged sketch edges.
#[derive(Clone, Debug)]
pub struct DynamicParallelResult {
    /// The selected family (identical to the serial dynamic runner's).
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage on the
    /// surviving graph.
    pub estimated_coverage: f64,
    /// Per-machine space reports.
    pub per_machine: Vec<SpaceReport>,
    /// Tree-reduce round/communication accounting.
    pub rounds: RoundsReport,
    /// Worker threads actually used (≤ requested, ≤ machines).
    pub threads_used: usize,
    /// The subsampling level the merged sketch decoded at.
    pub sample_level: usize,
    /// That level's sampling probability `p = 2^{−level}`.
    pub sampling_p: f64,
    /// Surviving edges recovered from the merged sketch.
    pub recovered_edges: usize,
    /// Wall-clock of the partition pass, in nanoseconds.
    pub partition_ns: u64,
    /// Wall-clock of the concurrent map phase, in nanoseconds.
    pub map_ns: u64,
    /// Wall-clock of reduce + recover + solve, in nanoseconds.
    pub reduce_solve_ns: u64,
}

impl DynamicParallelResult {
    /// Total wall-clock across the three phases, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.partition_ns + self.map_ns + self.reduce_solve_ns
    }
}

impl ParallelRunner {
    /// A runner executing `cfg` on up to `threads` worker threads.
    pub fn new(cfg: DistConfig, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        ParallelRunner {
            cfg,
            threads,
            fan_in: DEFAULT_FAN_IN,
            batch: DEFAULT_BATCH,
            ship: ShipFormat::InMemory,
            ingest: IngestMode::Pipelined,
        }
    }

    /// Override the ingest schedule (default [`IngestMode::Pipelined`]).
    /// Output-invariant; see [`IngestMode`].
    pub fn with_ingest_mode(mut self, ingest: IngestMode) -> Self {
        self.ingest = ingest;
        self
    }

    /// The ingest schedule this runner uses.
    pub fn ingest_mode(&self) -> IngestMode {
        self.ingest
    }

    /// Override the reduce fan-in (`≥ 2`).
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        assert!(fan_in >= 2, "fan-in must be at least 2");
        self.fan_in = fan_in;
        self
    }

    /// Override the reduce ship format. The default is
    /// [`ShipFormat::InMemory`] (a shared-memory reducer); pick
    /// [`ShipFormat::Json`] to run every ship through the full snapshot
    /// wire round-trip (slower, exercises serialization fidelity).
    pub fn with_ship_format(mut self, ship: ShipFormat) -> Self {
        self.ship = ship;
        self
    }

    /// Override the partition batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The configuration this runner executes.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Worker threads the map phase will spawn for `machines` shards:
    /// the requested cap, bounded by the number of ceil-sized contiguous
    /// chunks the shards actually split into (7 shards on 5 threads make
    /// chunks of 2, i.e. only 4 workers).
    fn workers(&self, machines: usize) -> usize {
        let cap = self.threads.min(machines).max(1);
        let per_worker = machines.max(1).div_ceil(cap);
        machines.max(1).div_ceil(per_worker)
    }

    /// The pipelined map phase ([`IngestMode::Pipelined`]), generic over
    /// the buffered element and the per-shard builder so the
    /// insertion-only, dynamic, and bank pipelines share it. The caller
    /// thread (`drive` + `route`) streams edges into per-shard chunk
    /// buffers of `self.batch` elements and ships each filled chunk over
    /// the owning worker's bounded channel; each worker owns the same
    /// contiguous shard range [`map_buffers`](Self::map_buffers) would
    /// give it and feeds arriving chunks to that shard's builder.
    ///
    /// Determinism: shard assignment is a pure function of the edge,
    /// each shard's chunks preserve arrival order (one feeder, FIFO
    /// channels), and chunk boundaries depend only on the stream and
    /// `self.batch` — so per-shard builders see exactly the two-barrier
    /// schedule's edge sequence, split at deterministic boundaries that
    /// the sketches' batch-size invariance makes irrelevant.
    ///
    /// Returns `(per-shard builders, feed_ns, drain_ns)`: `feed_ns` is
    /// the caller thread's routing/shipping time (the pipelined
    /// "partition phase" — building overlaps it), `drain_ns` the
    /// remaining tail until all workers finish.
    ///
    /// A panic on any pipeline thread is returned as a typed
    /// [`RunError::Panic`] (the partial builders are discarded — they
    /// may be torn); callers degrade to a serial rebuild, never abort.
    fn pipelined_map<B, T>(
        &self,
        machines: usize,
        drive: impl FnOnce(&mut dyn FnMut(&[B])),
        route: impl Fn(B) -> usize,
        make: impl Fn() -> T + Sync,
        feed: impl Fn(&mut T, &[B]) + Sync,
    ) -> Result<(Vec<T>, u64, u64), RunError>
    where
        B: Copy + Send,
        T: Send,
    {
        let workers = self.workers(machines);
        let per_worker = machines.max(1).div_ceil(workers);
        let batch = self.batch;
        let mut locals: Vec<Option<T>> = (0..machines).map(|_| None).collect();
        let t0 = Instant::now();
        let feed_ns = crossbeam::scope(|scope| {
            let make = &make;
            let feed = &feed;
            let mut senders = Vec::with_capacity(workers);
            for slot_chunk in locals.chunks_mut(per_worker) {
                let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Vec<B>)>(PIPELINE_DEPTH);
                senders.push(tx);
                scope.spawn(move |_| {
                    let mut builders: Vec<T> = (0..slot_chunk.len()).map(|_| make()).collect();
                    while let Ok((local, chunk)) = rx.recv() {
                        feed(&mut builders[local], &chunk);
                    }
                    for (slot, b) in slot_chunk.iter_mut().zip(builders) {
                        *slot = Some(b);
                    }
                });
            }
            let t_feed = Instant::now();
            let mut bufs: Vec<Vec<B>> = (0..machines).map(|_| Vec::with_capacity(batch)).collect();
            drive(&mut |incoming| {
                for &e in incoming {
                    let s = route(e);
                    let buf = &mut bufs[s];
                    buf.push(e);
                    if buf.len() >= batch {
                        let full = std::mem::replace(buf, Vec::with_capacity(batch));
                        // A send can only fail when the owning worker
                        // panicked; keep feeding the survivors — the
                        // scope reports the panic as Err below and the
                        // whole attempt is discarded.
                        let _ = senders[s / per_worker].send((s % per_worker, full));
                    }
                }
            });
            for (s, buf) in bufs.into_iter().enumerate() {
                if !buf.is_empty() {
                    let _ = senders[s / per_worker].send((s % per_worker, buf));
                }
            }
            // Dropping the senders closes the channels; workers drain
            // their queues and park their builders.
            drop(senders);
            t_feed.elapsed().as_nanos() as u64
        })
        .map_err(|p| RunError::Panic(panic_message(p)))?;
        let total_ns = t0.elapsed().as_nanos() as u64;
        let locals = locals
            .into_iter()
            .map(|s| s.expect("every shard slot is filled"))
            .collect();
        Ok((locals, feed_ns, total_ns.saturating_sub(feed_ns)))
    }

    /// Execute the full pipeline on `stream`.
    ///
    /// Unlike the sequential simulation the stream need not be [`Sync`]:
    /// it is consumed once, single-threaded, by the feeder (pipelined
    /// mode) or the partition pass (two-barrier mode); only materialized
    /// chunks cross threads.
    pub fn run(&self, stream: &dyn EdgeStream) -> ParallelResult {
        let cfg = &self.cfg;
        let params = cfg.sketch_params(stream.num_sets());

        let (locals, partition_ns, map_ns) = match self.ingest {
            IngestMode::TwoBarrier => {
                let t0 = Instant::now();
                let buffers = partition_edges(stream, cfg.machines, cfg.shard_seed(), self.batch);
                let partition_ns = t0.elapsed().as_nanos() as u64;
                let t1 = Instant::now();
                let locals = self.map_sketches(&buffers, params, cfg.seed);
                (locals, partition_ns, t1.elapsed().as_nanos() as u64)
            }
            IngestMode::Pipelined => {
                let (machines, shard_seed) = (cfg.machines, cfg.shard_seed());
                let piped = self.pipelined_map(
                    machines,
                    |f| stream.for_each_batch(self.batch, f),
                    |e: Edge| shard_of_edge(e, machines, shard_seed),
                    || ThresholdSketch::new(params, cfg.seed),
                    |s: &mut ThresholdSketch, chunk: &[Edge]| s.update_batch(chunk),
                );
                match piped {
                    Ok(r) => r,
                    Err(_) => {
                        // A pipeline thread panicked: rebuild serially
                        // on this thread (identical output by the
                        // determinism contract, only slower).
                        let t0 = Instant::now();
                        let buffers = partition_edges(stream, machines, shard_seed, self.batch);
                        let partition_ns = t0.elapsed().as_nanos() as u64;
                        let t1 = Instant::now();
                        let locals = buffers
                            .iter()
                            .map(|buf| {
                                let mut s = ThresholdSketch::new(params, cfg.seed);
                                s.update_batch(buf);
                                s
                            })
                            .collect();
                        (locals, partition_ns, t1.elapsed().as_nanos() as u64)
                    }
                }
            }
        };
        let per_machine: Vec<SpaceReport> = locals.iter().map(|s| s.space_report()).collect();

        let t2 = Instant::now();
        let (merged, rounds) = tree_reduce_with(locals, self.fan_in, self.ship);
        let trace = bucket_greedy_k_cover(&merged.csr_view(), cfg.k);
        let family = trace.family();
        let reduce_solve_ns = t2.elapsed().as_nanos() as u64;

        ParallelResult {
            estimated_coverage: merged.estimate_coverage(&family),
            merged_edges: merged.edges_stored(),
            per_machine,
            rounds,
            threads_used: self.workers(cfg.machines),
            partition_ns,
            map_ns,
            reduce_solve_ns,
            family,
        }
    }

    /// Run `build` once per shard buffer, at most `self.threads` at a
    /// time (contiguous shard ranges per worker — assignment does not
    /// affect the output, only the schedule). The shared scaffolding of
    /// every map-phase fan-out, generic over the buffer element so the
    /// signed (dynamic) and unsigned pipelines share it.
    ///
    /// A panic on any map thread is returned as a typed
    /// [`RunError::Panic`]; see
    /// [`map_buffers_resilient`](Self::map_buffers_resilient) for the
    /// degrading wrapper every executor path uses.
    fn map_buffers<B, T, F>(&self, buffers: &[Vec<B>], build: F) -> Result<Vec<T>, RunError>
    where
        B: Sync,
        T: Send,
        F: Fn(&[B]) -> T + Sync,
    {
        let workers = self.workers(buffers.len());
        let per_worker = buffers.len().div_ceil(workers);
        let mut locals: Vec<Option<T>> = (0..buffers.len()).map(|_| None).collect();
        let build = &build;
        crossbeam::scope(|scope| {
            for (slot_chunk, buf_chunk) in locals
                .chunks_mut(per_worker)
                .zip(buffers.chunks(per_worker))
            {
                scope.spawn(move |_| {
                    for (slot, buf) in slot_chunk.iter_mut().zip(buf_chunk) {
                        *slot = Some(build(buf));
                    }
                });
            }
        })
        .map_err(|p| RunError::Panic(panic_message(p)))?;
        Ok(locals
            .into_iter()
            .map(|s| s.expect("every shard slot is filled"))
            .collect())
    }

    /// [`map_buffers`](Self::map_buffers) with panic degradation: when a
    /// map thread panics, the parallel attempt is discarded (its slots
    /// may be torn) and every buffer is rebuilt serially on the caller
    /// thread. Shard builds are deterministic, so a panic is almost
    /// surely deterministic too — but a transient environment failure
    /// (allocation, runaway hook) should cost wall clock, not the run.
    fn map_buffers_resilient<B, T, F>(&self, buffers: &[Vec<B>], build: F) -> Vec<T>
    where
        B: Sync,
        T: Send,
        F: Fn(&[B]) -> T + Sync,
    {
        match self.map_buffers(buffers, &build) {
            Ok(locals) => locals,
            Err(_) => buffers.iter().map(|buf| build(buf)).collect(),
        }
    }

    /// Map phase: build one sketch per shard buffer.
    fn map_sketches(
        &self,
        buffers: &[Vec<Edge>],
        params: SketchParams,
        seed: u64,
    ) -> Vec<ThresholdSketch> {
        self.map_buffers_resilient(buffers, |buf| {
            let mut s = ThresholdSketch::new(params, seed);
            s.update_batch(buf);
            s
        })
    }

    /// Execute the **dynamic** pipeline on a signed update stream:
    /// partition the updates in one batched pass (deletes co-located
    /// with their inserts), build one [`DynamicSketch`] per shard
    /// concurrently, tree-reduce through the same generic
    /// [`tree_reduce_with`] path as the insertion-only executor, recover
    /// the densest decodable level, and solve.
    ///
    /// The dynamic sketch is linear, so the determinism contract is
    /// exact: for any thread count, batch size, fan-in, or ship format,
    /// the merged sketch is bit-identical to
    /// [`dynamic_distributed_k_cover`](crate::runner::dynamic_distributed_k_cover)'s
    /// — and to a single-machine build.
    pub fn run_dynamic(&self, stream: &dyn DynamicEdgeStream) -> DynamicParallelResult {
        let cfg = &self.cfg;
        let params = cfg.dynamic_sketch_params(stream.num_sets());

        let (locals, partition_ns, map_ns) = match self.ingest {
            IngestMode::TwoBarrier => {
                let t0 = Instant::now();
                let buffers = partition_updates(stream, cfg.machines, cfg.shard_seed(), self.batch);
                let partition_ns = t0.elapsed().as_nanos() as u64;
                let t1 = Instant::now();
                let locals = self.map_buffers_resilient(&buffers, |buf: &[SignedEdge]| {
                    let mut s = DynamicSketch::new(params, cfg.seed);
                    s.update_batch(buf);
                    s
                });
                (locals, partition_ns, t1.elapsed().as_nanos() as u64)
            }
            IngestMode::Pipelined => {
                let (machines, shard_seed) = (cfg.machines, cfg.shard_seed());
                let piped = self.pipelined_map(
                    machines,
                    |f| stream.for_each_update_batch(self.batch, f),
                    |u: SignedEdge| shard_of_edge(u.edge, machines, shard_seed),
                    || DynamicSketch::new(params, cfg.seed),
                    |s: &mut DynamicSketch, chunk: &[SignedEdge]| s.update_batch(chunk),
                );
                match piped {
                    Ok(r) => r,
                    Err(_) => {
                        // Panic degradation: serial rebuild, identical
                        // output (the dynamic sketch is linear).
                        let t0 = Instant::now();
                        let buffers = partition_updates(stream, machines, shard_seed, self.batch);
                        let partition_ns = t0.elapsed().as_nanos() as u64;
                        let t1 = Instant::now();
                        let locals = buffers
                            .iter()
                            .map(|buf| {
                                let mut s = DynamicSketch::new(params, cfg.seed);
                                s.update_batch(buf);
                                s
                            })
                            .collect();
                        (locals, partition_ns, t1.elapsed().as_nanos() as u64)
                    }
                }
            }
        };
        let per_machine: Vec<SpaceReport> = locals.iter().map(|s| s.space_report()).collect();

        let t2 = Instant::now();
        let (merged, rounds) = tree_reduce_with(locals, self.fan_in, self.ship);
        let (family, estimated_coverage, sample) = crate::runner::recover_and_solve(&merged, cfg.k);
        let reduce_solve_ns = t2.elapsed().as_nanos() as u64;

        DynamicParallelResult {
            estimated_coverage,
            per_machine,
            rounds,
            threads_used: self.workers(cfg.machines),
            sample_level: sample.level,
            sampling_p: sample.sampling_p,
            recovered_edges: sample.edges.len(),
            partition_ns,
            map_ns,
            reduce_solve_ns,
            family,
        }
    }

    /// Build a multi-guess [`SketchBank`] (Algorithm 5's per-guess
    /// sketches) in parallel: each shard's bank is built concurrently
    /// from its buffer — through the bank's shared-hash batched path
    /// (each edge hashed once per *bank*, pre-filtered against the
    /// bank-wide acceptance bound) — then banks are merged
    /// guess-by-guess. Equals the single-pass
    /// [`SketchBank::from_stream`] build on the retained elements of
    /// every guess — McGregor–Vu-style multi-threshold state exercised
    /// under true concurrency.
    pub fn build_bank(&self, guesses: &[SketchParams], stream: &dyn EdgeStream) -> SketchBank {
        let cfg = &self.cfg;
        let locals = match self.ingest {
            IngestMode::TwoBarrier => {
                let buffers = partition_edges(stream, cfg.machines, cfg.shard_seed(), self.batch);
                self.map_buffers_resilient(&buffers, |buf| {
                    let mut bank = SketchBank::new(guesses.iter().copied(), cfg.seed);
                    bank.update_batch(buf);
                    bank
                })
            }
            IngestMode::Pipelined => {
                let (machines, shard_seed) = (cfg.machines, cfg.shard_seed());
                let piped = self.pipelined_map(
                    machines,
                    |f| stream.for_each_batch(self.batch, f),
                    |e: Edge| shard_of_edge(e, machines, shard_seed),
                    || SketchBank::new(guesses.iter().copied(), cfg.seed),
                    |bank: &mut SketchBank, chunk: &[Edge]| bank.update_batch(chunk),
                );
                match piped {
                    Ok((locals, _, _)) => locals,
                    Err(_) => {
                        // Panic degradation: serial rebuild per shard.
                        let buffers = partition_edges(stream, machines, shard_seed, self.batch);
                        buffers
                            .iter()
                            .map(|buf| {
                                let mut bank = SketchBank::new(guesses.iter().copied(), cfg.seed);
                                bank.update_batch(buf);
                                bank
                            })
                            .collect()
                    }
                }
            }
        };
        let mut banks = locals.into_iter();
        let mut acc = banks.next().expect("at least one machine");
        for bank in banks {
            acc.merge_from(&bank);
        }
        acc
    }
}

/// Route every edge of `stream` into its shard's buffer in **one**
/// batched pass. Buffer `i` holds shard `i`'s edges in arrival order —
/// exactly the sub-sequence
/// [`ShardedStream`](crate::partition::ShardedStream) would deliver, at
/// `O(|E|)` total instead of `O(shards·|E|)`.
pub fn partition_edges(
    stream: &dyn EdgeStream,
    shards: usize,
    seed: u64,
    batch: usize,
) -> Vec<Vec<Edge>> {
    assert!(shards >= 1, "need at least one shard");
    let prealloc = stream
        .len_hint()
        .map(|n| n / shards + n / (8 * shards) + 1)
        .unwrap_or(0);
    let mut buffers: Vec<Vec<Edge>> = (0..shards).map(|_| Vec::with_capacity(prealloc)).collect();
    stream.for_each_batch(batch, &mut |chunk| {
        for &e in chunk {
            buffers[shard_of_edge(e, shards, seed)].push(e);
        }
    });
    buffers
}

/// Route every **signed** update of `stream` into its shard's buffer in
/// one batched pass — [`partition_edges`] for the dynamic model.
/// Routing hashes the edge and ignores the sign, so a delete always
/// lands in the buffer holding its insert (exactly the sub-sequence
/// [`DynamicShardedStream`](crate::partition::DynamicShardedStream)
/// would deliver).
pub fn partition_updates(
    stream: &dyn DynamicEdgeStream,
    shards: usize,
    seed: u64,
    batch: usize,
) -> Vec<Vec<SignedEdge>> {
    assert!(shards >= 1, "need at least one shard");
    let prealloc = stream
        .update_len_hint()
        .map(|n| n / shards + n / (8 * shards) + 1)
        .unwrap_or(0);
    let mut buffers: Vec<Vec<SignedEdge>> =
        (0..shards).map(|_| Vec::with_capacity(prealloc)).collect();
    stream.for_each_update_batch(batch, &mut |chunk| {
        for &u in chunk {
            buffers[shard_of_edge(u.edge, shards, seed)].push(u);
        }
    });
    buffers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::ShardedStream;
    use crate::runner::distributed_k_cover;
    use coverage_data::{planted_k_cover, uniform_instance, zipf_instance};
    use coverage_sketch::SketchSizing;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn workload() -> VecStream {
        let p = planted_k_cover(40, 5_000, 4, 150, 3);
        let mut s = VecStream::from_instance(&p.instance);
        ArrivalOrder::Random(5).apply(s.edges_mut());
        s
    }

    #[test]
    fn partition_matches_sharded_stream_views() {
        let stream = workload();
        let shards = 6;
        let seed = 0xBEEF;
        let buffers = partition_edges(&stream, shards, seed, 512);
        assert_eq!(buffers.len(), shards);
        for (i, buf) in buffers.iter().enumerate() {
            let mut filtered = Vec::new();
            ShardedStream::new(&stream, i, shards, seed).for_each(&mut |e| filtered.push(e));
            assert_eq!(buf, &filtered, "shard {i} buffer must equal filtered view");
        }
    }

    #[test]
    fn parallel_equals_sequential_family() {
        let stream = workload();
        for machines in [1usize, 3, 8] {
            let cfg =
                DistConfig::new(machines, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
            let seq = distributed_k_cover(&stream, &cfg);
            for threads in [1usize, 2, 4] {
                for fan_in in [2usize, 4] {
                    let par = ParallelRunner::new(cfg, threads)
                        .with_fan_in(fan_in)
                        .run(&stream);
                    assert_eq!(
                        par.family, seq.family,
                        "machines={machines} threads={threads} fan_in={fan_in}"
                    );
                    assert_eq!(par.merged_edges, seq.merged_edges);
                    assert_eq!(par.per_machine.len(), machines);
                    assert_eq!(par.threads_used, threads.min(machines));
                }
            }
        }
    }

    #[test]
    fn threads_used_reports_actual_spawn_count() {
        // 7 shards on 5 requested threads chunk into ceil(7/5)=2 shards
        // per worker, i.e. only 4 workers actually spawn.
        let stream = workload();
        let cfg = DistConfig::new(7, 4, 0.3, 7).with_sizing(SketchSizing::Budget(1_000));
        let res = ParallelRunner::new(cfg, 5).run(&stream);
        assert_eq!(res.threads_used, 4);
        // Requesting more threads than shards uses one per shard.
        let res = ParallelRunner::new(cfg, 64).run(&stream);
        assert_eq!(res.threads_used, 7);
    }

    #[test]
    fn wire_json_ship_format_matches_in_memory() {
        let stream = workload();
        let cfg = DistConfig::new(6, 4, 0.3, 19).with_sizing(SketchSizing::Budget(1_500));
        let mem = ParallelRunner::new(cfg, 2).run(&stream);
        let json = ParallelRunner::new(cfg, 2)
            .with_ship_format(ShipFormat::Json)
            .run(&stream);
        assert_eq!(mem.family, json.family);
        assert_eq!(mem.merged_edges, json.merged_edges);
        assert_eq!(mem.rounds.total_words(), json.rounds.total_words());
    }

    #[test]
    fn batch_size_does_not_change_output() {
        let stream = workload();
        let cfg = DistConfig::new(4, 4, 0.3, 7).with_sizing(SketchSizing::Budget(1_500));
        let baseline = ParallelRunner::new(cfg, 2).run(&stream);
        for batch in [1usize, 17, 100_000] {
            let res = ParallelRunner::new(cfg, 2).with_batch(batch).run(&stream);
            assert_eq!(res.family, baseline.family, "batch={batch}");
        }
    }

    #[test]
    fn determinism_across_generators() {
        let insts = [
            uniform_instance(30, 2_000, 80, 17),
            zipf_instance(30, 2_000, 0.5, 1.05, 400, 17),
            planted_k_cover(30, 2_000, 3, 100, 17).instance,
        ];
        for (g, inst) in insts.iter().enumerate() {
            let mut stream = VecStream::from_instance(inst);
            ArrivalOrder::Random(g as u64 + 1).apply(stream.edges_mut());
            let cfg = DistConfig::new(5, 3, 0.3, 29).with_sizing(SketchSizing::Budget(1_000));
            let seq = distributed_k_cover(&stream, &cfg);
            let par = ParallelRunner::new(cfg, 3).run(&stream);
            assert_eq!(par.family, seq.family, "generator {g}");
        }
    }

    #[test]
    fn rounds_report_reflects_fan_in() {
        let stream = workload();
        let cfg = DistConfig::new(8, 4, 0.3, 7).with_sizing(SketchSizing::Budget(1_000));
        let narrow = ParallelRunner::new(cfg, 4).with_fan_in(2).run(&stream);
        let wide = ParallelRunner::new(cfg, 4).with_fan_in(8).run(&stream);
        assert_eq!(narrow.rounds.num_rounds(), 3); // 8 → 4 → 2 → 1
        assert_eq!(wide.rounds.num_rounds(), 1); // 8 → 1
        assert_eq!(narrow.family, wide.family);
    }

    #[test]
    fn parallel_bank_equals_single_pass_bank() {
        let stream = workload();
        let guesses = [
            SketchParams::with_budget(40, 2, 0.4, 400),
            SketchParams::with_budget(40, 4, 0.4, 900),
            SketchParams::with_budget(40, 8, 0.4, 1_600),
        ];
        let cfg = DistConfig::new(6, 4, 0.3, 13).with_sizing(SketchSizing::Budget(1_000));
        let single = SketchBank::from_stream(guesses, cfg.seed, &stream);
        let par = ParallelRunner::new(cfg, 3).build_bank(&guesses, &stream);
        assert_eq!(par.len(), single.len());
        for (a, b) in single.sketches().iter().zip(par.sketches()) {
            // Same retained elements per guess; the degree cap does not
            // bind for these parameters, so the *full* canonical content
            // (hashes, set lists, truncation flags) must coincide too —
            // the shared-hash shard path must not perturb anything.
            assert_eq!(
                a.canonical_content(),
                b.canonical_content(),
                "per-guess retained content must match"
            );
        }
    }

    #[test]
    fn pipelined_equals_two_barrier_insert_only() {
        let stream = workload();
        let cfg = DistConfig::new(6, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
        let barrier = ParallelRunner::new(cfg, 3)
            .with_ingest_mode(IngestMode::TwoBarrier)
            .run(&stream);
        for threads in [1usize, 2, 8] {
            for batch in [1usize, 100, DEFAULT_BATCH] {
                let piped = ParallelRunner::new(cfg, threads)
                    .with_ingest_mode(IngestMode::Pipelined)
                    .with_batch(batch)
                    .run(&stream);
                assert_eq!(
                    piped.family, barrier.family,
                    "threads={threads} batch={batch}"
                );
                assert_eq!(piped.merged_edges, barrier.merged_edges);
            }
        }
    }

    #[test]
    fn pipelined_equals_two_barrier_dynamic() {
        let w = churn_stream();
        let cfg = DistConfig::new(5, 4, 0.3, 17).with_sizing(SketchSizing::Budget(1_500));
        let barrier = ParallelRunner::new(cfg, 3)
            .with_ingest_mode(IngestMode::TwoBarrier)
            .run_dynamic(&w.stream);
        for threads in [1usize, 2, 8] {
            let piped = ParallelRunner::new(cfg, threads)
                .with_ingest_mode(IngestMode::Pipelined)
                .run_dynamic(&w.stream);
            assert_eq!(piped.family, barrier.family, "threads={threads}");
            assert_eq!(piped.sample_level, barrier.sample_level);
            assert_eq!(piped.recovered_edges, barrier.recovered_edges);
        }
    }

    #[test]
    fn pipelined_bank_equals_two_barrier_bank() {
        let stream = workload();
        let guesses = [
            SketchParams::with_budget(40, 2, 0.4, 400),
            SketchParams::with_budget(40, 4, 0.4, 900),
        ];
        let cfg = DistConfig::new(6, 4, 0.3, 13).with_sizing(SketchSizing::Budget(1_000));
        let barrier = ParallelRunner::new(cfg, 3)
            .with_ingest_mode(IngestMode::TwoBarrier)
            .build_bank(&guesses, &stream);
        let piped = ParallelRunner::new(cfg, 3)
            .with_ingest_mode(IngestMode::Pipelined)
            .build_bank(&guesses, &stream);
        for (a, b) in barrier.sketches().iter().zip(piped.sketches()) {
            assert_eq!(a.canonical_content(), b.canonical_content());
        }
    }

    #[test]
    fn pipelined_handles_empty_and_tiny_streams() {
        let cfg = DistConfig::new(4, 2, 0.3, 7).with_sizing(SketchSizing::Budget(500));
        let empty = VecStream::new(8, Vec::new());
        let res = ParallelRunner::new(cfg, 2).run(&empty);
        assert!(res.family.is_empty());
        assert_eq!(res.merged_edges, 0);
        // One edge across 4 shards: three workers drain empty channels.
        let one = VecStream::new(8, vec![Edge::new(0u32, 1u64)]);
        let res = ParallelRunner::new(cfg, 4).run(&one);
        assert_eq!(res.merged_edges, 1);
    }

    #[test]
    fn map_panic_degrades_to_serial_rebuild() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cfg = DistConfig::new(4, 2, 0.3, 1);
        let runner = ParallelRunner::new(cfg, 2);
        let buffers: Vec<Vec<u64>> = (0..4u64).map(|i| vec![i]).collect();
        // First build call panics (on a map thread); the resilient
        // wrapper must retry everything serially and still produce all
        // four results — never abort the caller.
        let poisoned = AtomicBool::new(true);
        let sums = runner.map_buffers_resilient(&buffers, |buf: &[u64]| {
            if poisoned.swap(false, Ordering::SeqCst) {
                panic!("injected map panic");
            }
            buf.iter().sum::<u64>()
        });
        assert_eq!(sums, vec![0, 1, 2, 3]);
    }

    #[test]
    fn map_panic_is_a_typed_error_not_an_abort() {
        let cfg = DistConfig::new(2, 2, 0.3, 1);
        let runner = ParallelRunner::new(cfg, 2);
        let buffers: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let err = runner
            .map_buffers(&buffers, |_: &[u64]| -> u64 { panic!("always down") })
            .unwrap_err();
        assert!(matches!(err, RunError::Panic(_)));
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_rejected() {
        let cfg = DistConfig::new(2, 2, 0.3, 1);
        ParallelRunner::new(cfg, 0);
    }

    fn churn_stream() -> coverage_data::DynamicWorkload {
        let p = planted_k_cover(30, 3_000, 4, 100, 3);
        coverage_data::churn_workload(&p.instance, 0.4, 5)
    }

    #[test]
    fn dynamic_parallel_equals_dynamic_serial() {
        use crate::runner::dynamic_distributed_k_cover;
        let w = churn_stream();
        for machines in [1usize, 3, 6] {
            let cfg =
                DistConfig::new(machines, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
            let serial = dynamic_distributed_k_cover(&w.stream, &cfg);
            for threads in [1usize, 2, 4] {
                let par = ParallelRunner::new(cfg, threads).run_dynamic(&w.stream);
                assert_eq!(
                    par.family, serial.family,
                    "machines={machines} threads={threads}"
                );
                assert_eq!(par.sample_level, serial.sample_level);
                assert_eq!(par.recovered_edges, serial.recovered_edges);
                assert_eq!(par.per_machine.len(), machines);
            }
        }
    }

    #[test]
    fn dynamic_wire_json_ship_matches_in_memory() {
        let w = churn_stream();
        let cfg = DistConfig::new(4, 4, 0.3, 19).with_sizing(SketchSizing::Budget(1_200));
        let mem = ParallelRunner::new(cfg, 2).run_dynamic(&w.stream);
        let json = ParallelRunner::new(cfg, 2)
            .with_ship_format(ShipFormat::Json)
            .run_dynamic(&w.stream);
        assert_eq!(mem.family, json.family);
        assert_eq!(mem.sample_level, json.sample_level);
        assert_eq!(mem.rounds.total_words(), json.rounds.total_words());
    }

    #[test]
    fn partition_updates_matches_dynamic_sharded_views() {
        use crate::partition::DynamicShardedStream;
        use coverage_stream::{DynamicEdgeStream, SignedEdge};
        let w = churn_stream();
        let shards = 5;
        let seed = 0xF00D;
        let buffers = partition_updates(&w.stream, shards, seed, 512);
        assert_eq!(buffers.len(), shards);
        for (i, buf) in buffers.iter().enumerate() {
            let mut filtered: Vec<SignedEdge> = Vec::new();
            DynamicShardedStream::new(&w.stream, i, shards, seed)
                .for_each_update(&mut |u| filtered.push(u));
            assert_eq!(buf, &filtered, "shard {i} buffer must equal filtered view");
        }
    }

    #[test]
    fn dynamic_cover_answers_for_survivors_not_prefix() {
        // The adversarial workload: the stream prefix makes decoys look
        // golden; only the dynamic pipeline answers for the survivors.
        let w = coverage_data::adversarial_insert_delete(24, 2_000, 4, 40, 17);
        let cfg = DistConfig::new(4, 4, 0.3, 23).with_sizing(SketchSizing::Budget(3_000));
        let res = ParallelRunner::new(cfg, 3).run_dynamic(&w.stream);
        let covered = w.planted.instance.coverage(&res.family);
        assert!(
            covered as f64 >= 0.9 * w.planted.optimal_value as f64,
            "dynamic cover {covered} of planted optimum {}",
            w.planted.optimal_value
        );
    }
}
