//! The map/reduce/solve drivers over simulated machines — the reference
//! executors for both stream models.
//!
//! Every executor here shares one **determinism contract** with the
//! parallel runner in [`crate::parallel`]: for a fixed [`DistConfig`]
//! (machines, seed, sizing), the selected cover is a pure function of
//! the input edge (multi)set — independent of threading, machine count
//! beyond sharding, merge order, and (for the dynamic pipeline) of the
//! interleaving of inserts and deletes. [`DistConfig::shard_seed`] and
//! [`DistConfig::sketch_params`]/[`DistConfig::dynamic_sketch_params`]
//! centralize the two knobs every executor must agree on for that to
//! hold.

use std::collections::VecDeque;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use coverage_core::offline::bucket_greedy_k_cover;
use coverage_core::SetId;
use coverage_sketch::{
    DynamicSketch, DynamicSketchParams, DynamicSnapshot, SketchSizing, SketchSnapshot,
    ThresholdSketch,
};
use coverage_stream::{DynamicEdgeStream, EdgeStream, SpaceReport};

use crate::fault::{Fault, FaultPlan};
use crate::net::registry::HeartbeatStats;
use crate::parallel::{partition_edges, partition_updates};
use crate::partition::{DynamicShardedStream, ShardedStream};
use crate::proto::{read_message, write_message, Message, ProtoError};
use crate::rounds::{tree_reduce_with, RoundsReport, ShipFormat};

/// A failure that ends a run with a typed error instead of a panic.
///
/// The taxonomy is deliberately small: everything a worker can do wrong
/// (crash, hang, corrupt a frame, speak the wrong version) is *recovered*
/// inside the dispatch loop, not surfaced here. Only two things abort a
/// run: the environment refusing to start any worker at all, and a panic
/// inside an in-process executor thread.
#[derive(Debug)]
pub enum RunError {
    /// Not a single worker subprocess could be spawned.
    Spawn(std::io::Error),
    /// An in-process executor thread panicked; the message is the panic
    /// payload when it was a string.
    Panic(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Spawn(e) => write!(f, "no worker could be spawned: {e}"),
            RunError::Panic(msg) => write!(f, "executor thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Spawn(e)
    }
}

/// Render a panic payload (from `catch_unwind` / a failed scope) as a
/// message for [`RunError::Panic`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Retry discipline for shard jobs that fail (worker crash, hang reaped
/// by deadline, corrupt reply): bounded per-shard attempts with
/// exponential backoff, plus a run-wide retry budget so a pathological
/// environment degrades to inline rebuilds instead of retrying forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Dispatch attempts per shard before it is built inline (`≥ 1`).
    pub max_attempts: usize,
    /// Total re-dispatches across the whole run before every further
    /// failure goes straight to inline rebuild.
    pub budget: usize,
    /// Backoff before the second attempt; doubles per attempt after.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            budget: 64,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// The backoff to wait after `attempt` failed attempts (1-based):
    /// `base · 2^(attempt−1)`, capped.
    pub fn backoff_after(&self, attempt: usize) -> Duration {
        let shift = attempt.saturating_sub(1).min(16) as u32;
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// Per-worker job deadlines. A "wheel" in spirit only: with at most a
/// handful of workers a linear scan beats any bucketed structure, so the
/// slots are a plain vector indexed by worker. Shared with the socket
/// executor ([`crate::net`]), whose registry grows as workers connect —
/// hence [`arm`](Self::arm) grows the slot vector on demand.
pub(crate) struct DeadlineWheel {
    slots: Vec<Option<Instant>>,
}

impl DeadlineWheel {
    pub(crate) fn new(workers: usize) -> Self {
        DeadlineWheel {
            slots: vec![None; workers],
        }
    }

    pub(crate) fn arm(&mut self, worker: usize, at: Instant) {
        if worker >= self.slots.len() {
            self.slots.resize(worker + 1, None);
        }
        self.slots[worker] = Some(at);
    }

    pub(crate) fn disarm(&mut self, worker: usize) {
        if worker < self.slots.len() {
            self.slots[worker] = None;
        }
    }

    /// The soonest armed deadline, if any.
    pub(crate) fn next_deadline(&self) -> Option<Instant> {
        self.slots.iter().flatten().min().copied()
    }

    /// Workers whose deadline is at or before `now`.
    pub(crate) fn expired(&self, now: Instant) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(wi, t)| match t {
                Some(at) if *at <= now => Some(wi),
                _ => None,
            })
            .collect()
    }
}

/// Configuration of a distributed k-cover run.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Number of simulated machines `w ≥ 1`.
    pub machines: usize,
    /// Number of sets to select.
    pub k: usize,
    /// Accuracy parameter ε (Algorithm 3 semantics: sketch ε is ε/12).
    pub epsilon: f64,
    /// Sketch sizing policy (per machine; the merged sketch keeps the
    /// same budget).
    pub sizing: SketchSizing,
    /// Global hash seed — every machine must share it or merging is
    /// meaningless.
    pub seed: u64,
}

impl DistConfig {
    /// Practical defaults.
    pub fn new(machines: usize, k: usize, epsilon: f64, seed: u64) -> Self {
        assert!(machines >= 1, "need at least one machine");
        DistConfig {
            machines,
            k,
            epsilon,
            sizing: SketchSizing::Practical { c: 4.0 },
            seed,
        }
    }

    /// Override the sizing policy.
    pub fn with_sizing(mut self, sizing: SketchSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// The seed edges are sharded with. Every executor (threaded
    /// simulation, serial simulation, parallel runner) must derive it
    /// identically or their machines see different shards and the
    /// determinism contract breaks.
    pub fn shard_seed(&self) -> u64 {
        self.seed ^ 0x5A
    }

    /// The per-machine sketch parameters for a stream of `n` sets
    /// (Algorithm 3 semantics: the sketch runs at ε/12). Centralized for
    /// the same reason as [`shard_seed`](Self::shard_seed): every
    /// executor must size sketches identically or their merged results —
    /// and therefore the selected families — diverge.
    pub fn sketch_params(&self, n: usize) -> coverage_sketch::SketchParams {
        let eps_sketch = (self.epsilon / 12.0).clamp(1e-6, 1.0);
        self.sizing.params(n, self.k.max(1), eps_sketch)
    }

    /// The per-machine **dynamic** sketch parameters: the same shared
    /// sizing as [`sketch_params`](Self::sketch_params) wrapped in the
    /// default level/bank geometry. Centralized for the same reason —
    /// every dynamic executor must agree or merged cells are garbage.
    pub fn dynamic_sketch_params(&self, n: usize) -> DynamicSketchParams {
        DynamicSketchParams::new(self.sketch_params(n))
    }
}

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistResult {
    /// The selected family.
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage.
    pub estimated_coverage: f64,
    /// Per-machine space reports (each machine holds one local sketch).
    pub per_machine: Vec<SpaceReport>,
    /// The merged sketch's final size (edges) — the reducer's footprint.
    pub merged_edges: usize,
}

/// Fold a non-empty list of compatible sketches into one.
pub fn merge_all(mut sketches: Vec<ThresholdSketch>) -> ThresholdSketch {
    let mut acc = sketches.pop().expect("merge_all needs at least one sketch");
    for s in &sketches {
        acc.merge_from(s);
    }
    acc
}

/// Distributed Algorithm 3: shard edges across `machines`, sketch each
/// shard on its own thread, merge, and run greedy on the merged sketch.
///
/// Each simulated machine re-filters the **full** stream through its
/// [`ShardedStream`] view, so the harness does `O(machines·|E|)` work;
/// the machines run on scoped threads (one per machine). For a
/// single-threaded reference with identical output see
/// [`distributed_k_cover_serial`]; for the executor that removes the
/// re-filtering cost see [`crate::ParallelRunner`].
pub fn distributed_k_cover(stream: &(dyn EdgeStream + Sync), cfg: &DistConfig) -> DistResult {
    let params = cfg.sketch_params(stream.num_sets());

    // Map phase: one sketch per machine, built concurrently.
    let mut locals: Vec<Option<ThresholdSketch>> = (0..cfg.machines).map(|_| None).collect();
    let scope_result = crossbeam::scope(|scope| {
        for (i, slot) in locals.iter_mut().enumerate() {
            let stream_ref = stream;
            scope.spawn(move |_| {
                let shard = ShardedStream::new(stream_ref, i, cfg.machines, cfg.shard_seed());
                *slot = Some(ThresholdSketch::from_stream(params, cfg.seed, &shard));
            });
        }
    });
    if scope_result.is_err() {
        // A machine thread panicked mid-build, so `locals` may be torn.
        // Discard it and degrade to the serial reference executor, which
        // produces the identical family by the determinism contract.
        return distributed_k_cover_serial(stream, cfg);
    }
    let locals: Vec<ThresholdSketch> = locals.into_iter().map(|s| s.unwrap()).collect();
    solve_locals(locals, cfg)
}

/// [`distributed_k_cover`] with the machines simulated strictly one
/// after another on the calling thread — no concurrency anywhere.
/// Output-identical to the threaded simulation (same shards, same
/// seeds, associative merge); this is the honest single-threaded
/// baseline the `bench_smoke` perf gate compares the parallel executor
/// against, so the gate does not depend on how many cores the CI
/// machine happens to have.
pub fn distributed_k_cover_serial(stream: &dyn EdgeStream, cfg: &DistConfig) -> DistResult {
    let params = cfg.sketch_params(stream.num_sets());
    let locals: Vec<ThresholdSketch> = (0..cfg.machines)
        .map(|i| {
            let shard = ShardedStream::new(stream, i, cfg.machines, cfg.shard_seed());
            ThresholdSketch::from_stream(params, cfg.seed, &shard)
        })
        .collect();
    solve_locals(locals, cfg)
}

/// Shared reduce + solve tail of both simulations.
fn solve_locals(locals: Vec<ThresholdSketch>, cfg: &DistConfig) -> DistResult {
    let per_machine: Vec<SpaceReport> = locals.iter().map(|s| s.space_report()).collect();

    // Reduce phase: associative fold.
    let merged = merge_all(locals);

    // Solve phase: zero-rebuild query on the merged sketch's CSR view.
    let trace = bucket_greedy_k_cover(&merged.csr_view(), cfg.k);
    let family = trace.family();
    DistResult {
        estimated_coverage: merged.estimate_coverage(&family),
        merged_edges: merged.edges_stored(),
        per_machine,
        family,
    }
}

/// Result of a distributed **dynamic** run.
#[derive(Clone, Debug)]
pub struct DynDistResult {
    /// The selected family.
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage on the
    /// surviving graph.
    pub estimated_coverage: f64,
    /// Per-machine space reports.
    pub per_machine: Vec<SpaceReport>,
    /// The subsampling level the merged sketch decoded at.
    pub sample_level: usize,
    /// That level's sampling probability `p = 2^{−level}`.
    pub sampling_p: f64,
    /// Surviving edges recovered from the merged sketch.
    pub recovered_edges: usize,
}

/// Distributed **dynamic** k-cover: shard the signed updates across
/// `machines` (deletes co-located with their inserts), build one
/// [`DynamicSketch`] per machine, merge by cell-wise addition, recover
/// the densest decodable level, and run greedy on the recovered
/// degree-capped instance.
///
/// Because the dynamic sketch is linear, the merged sketch is
/// **bit-identical** to a single-machine build over the whole stream —
/// the determinism contract holds exactly, not just up to tie-breaking.
///
/// # Panics
///
/// Panics if no subsampling level decodes (the sketch was sized with
/// too few levels for the surviving edge count).
pub fn dynamic_distributed_k_cover(
    stream: &dyn DynamicEdgeStream,
    cfg: &DistConfig,
) -> DynDistResult {
    let params = cfg.dynamic_sketch_params(stream.num_sets());
    let locals: Vec<DynamicSketch> = (0..cfg.machines)
        .map(|i| {
            let shard = DynamicShardedStream::new(stream, i, cfg.machines, cfg.shard_seed());
            DynamicSketch::from_stream(params, cfg.seed, &shard)
        })
        .collect();
    solve_dynamic_locals(locals, cfg)
}

/// Recover + greedy-solve tail shared by every dynamic executor: decode
/// the merged sketch's densest level and run greedy on the recovered,
/// degree-capped instance. Returns `(family, estimated_coverage,
/// sample)`.
pub(crate) fn recover_and_solve(
    merged: &DynamicSketch,
    k: usize,
) -> (Vec<SetId>, f64, coverage_sketch::DynamicSample) {
    let sample = merged.recover_expect();
    let trace = bucket_greedy_k_cover(&merged.csr_view(&sample), k);
    let family = trace.family();
    let estimated = merged.estimate_coverage(&sample, &family);
    (family, estimated, sample)
}

/// Shared reduce + recover + solve tail of the serial dynamic executors.
pub(crate) fn solve_dynamic_locals(locals: Vec<DynamicSketch>, cfg: &DistConfig) -> DynDistResult {
    let per_machine: Vec<SpaceReport> = locals.iter().map(|s| s.space_report()).collect();
    let mut iter = locals.into_iter();
    let mut merged = iter.next().expect("at least one machine");
    for s in iter {
        merged.merge_from(&s);
    }
    let (family, estimated_coverage, sample) = recover_and_solve(&merged, cfg.k);
    DynDistResult {
        estimated_coverage,
        per_machine,
        sample_level: sample.level,
        sampling_p: sample.sampling_p,
        recovered_edges: sample.edges.len(),
        family,
    }
}

/// How to start one worker subprocess: a program plus the arguments
/// that put it into worker mode (reading framed jobs on stdin).
#[derive(Clone, Debug)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
}

impl WorkerCommand {
    /// A worker command for an explicit program and arguments.
    pub fn new(program: impl Into<PathBuf>, args: impl IntoIterator<Item = String>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: args.into_iter().collect(),
        }
    }

    /// Re-invoke the *current executable* with the given arguments — how
    /// the CLI (`coverage worker`) and the bench harness spawn workers.
    pub fn current_exe(args: impl IntoIterator<Item = String>) -> std::io::Result<Self> {
        Ok(Self::new(std::env::current_exe()?, args))
    }

    fn spawn(&self) -> std::io::Result<Child> {
        Command::new(&self.program)
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
    }

    /// Spawn the worker with `--connect ADDR` appended and **no**
    /// parent-owned protocol pipes — how the socket executor
    /// ([`crate::net::SocketRunner`]) launches loopback workers: the
    /// framed protocol rides the TCP connection the child dials back.
    pub(crate) fn spawn_connected(&self, addr: &str) -> std::io::Result<Child> {
        Command::new(&self.program)
            .args(&self.args)
            .arg("--connect")
            .arg(addr)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
    }
}

/// What a worker currently owes the parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Inflight {
    /// Nothing outstanding; eligible for a job.
    Idle,
    /// Owes the echo of a liveness probe with this nonce.
    Probe(u64),
    /// Owes the reply for this shard's job.
    Shard(usize),
}

/// One spawned worker: the child process, our write end, and the
/// dedicated reader thread draining its stdout into the shared event
/// channel (so a hung worker blocks its reader, never the parent).
struct WorkerSlot {
    child: Child,
    stdin: Option<ChildStdin>,
    reader: Option<JoinHandle<()>>,
    alive: bool,
    inflight: Inflight,
    /// When the outstanding liveness probe was written, so its echo
    /// yields a round-trip sample for [`HeartbeatStats`].
    probe_sent: Option<Instant>,
}

impl WorkerSlot {
    fn mark_dead(&mut self) {
        self.alive = false;
        // Drop our end of its stdin so a still-running process sees EOF
        // and exits instead of blocking forever on a read.
        self.stdin = None;
    }
}

/// One event from a worker's reader thread: worker index plus either a
/// decoded reply frame (with its wire size) or the typed read failure
/// that ended the stream.
type WorkerEvent = (usize, Result<(Message, u64), ProtoError>);

/// Drain `stdout` into `tx` until the stream ends; the terminal error
/// (including clean [`ProtoError::Eof`]) is forwarded as the thread's
/// last event so the parent observes *why* the stream ended.
fn spawn_reader(
    wi: usize,
    mut stdout: BufReader<ChildStdout>,
    tx: Sender<WorkerEvent>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match read_message(&mut stdout) {
            Ok(ok) => {
                if tx.send((wi, Ok(ok))).is_err() {
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send((wi, Err(e)));
                return;
            }
        }
    })
}

/// Bookkeeping shared by both dispatch loops.
struct DispatchOutcome<Snap> {
    snapshots: Vec<Snap>,
    workers_spawned: usize,
    workers_lost: usize,
    shards_resharded: usize,
    shards_built_inline: usize,
    deadline_reaps: usize,
    retries: usize,
    proto_faults: usize,
    wire_bytes: u64,
    heartbeat: HeartbeatStats,
}

/// Result of a [`ProcessRunner`] insertion-only run: the
/// [`DistResult`] fields plus reduce accounting and the process-level
/// fault/recovery counters.
#[derive(Clone, Debug)]
pub struct ProcessResult {
    /// The selected family (identical to the serial and in-process
    /// parallel executors').
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage.
    pub estimated_coverage: f64,
    /// The merged sketch's final size (edges).
    pub merged_edges: usize,
    /// Tree-reduce round/communication accounting (the parent-side
    /// reduce over restored worker snapshots).
    pub rounds: RoundsReport,
    /// Worker processes spawned.
    pub workers_spawned: usize,
    /// Worker processes lost mid-run (crash, kill, or injected fault).
    pub workers_lost: usize,
    /// Shard jobs re-dispatched to surviving workers after a loss.
    pub shards_resharded: usize,
    /// Shards built inline in the parent because every worker died or a
    /// shard exhausted its retry allowance.
    pub shards_built_inline: usize,
    /// Workers killed by the per-job deadline reaper (hangs and
    /// over-deadline delays — failures EOF can never surface).
    pub deadline_reaps: usize,
    /// Shard jobs re-dispatched after a backoff (a subset of
    /// `shards_resharded` timing: every retry waited out its
    /// exponential backoff first).
    pub retries: usize,
    /// Typed protocol faults observed on worker pipes (corrupt frames,
    /// version mismatches, unexpected replies) — each cost that worker
    /// its life but never the run.
    pub proto_faults: usize,
    /// Total pipe bytes of worker reply frames (the map→reduce
    /// shipment, in the job's [`ShipFormat`] encoding).
    pub wire_bytes: u64,
    /// Round-trip latency of answered liveness probes (the handshake
    /// heartbeats), aggregated over every worker.
    pub heartbeat: HeartbeatStats,
    /// Wall-clock nanoseconds partitioning the stream.
    pub partition_ns: u64,
    /// Wall-clock nanoseconds dispatching shards and collecting
    /// snapshots from workers.
    pub map_ns: u64,
    /// Wall-clock nanoseconds in the reduce + solve tail.
    pub reduce_solve_ns: u64,
}

/// Result of a [`ProcessRunner`] dynamic run: the [`DynDistResult`]
/// fields plus reduce accounting and fault/recovery counters.
#[derive(Clone, Debug)]
pub struct DynProcessResult {
    /// The selected family (identical to the serial dynamic executor's).
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage on the
    /// surviving graph.
    pub estimated_coverage: f64,
    /// The subsampling level the merged sketch decoded at.
    pub sample_level: usize,
    /// That level's sampling probability `p = 2^{−level}`.
    pub sampling_p: f64,
    /// Surviving edges recovered from the merged sketch.
    pub recovered_edges: usize,
    /// Tree-reduce round/communication accounting.
    pub rounds: RoundsReport,
    /// Worker processes spawned.
    pub workers_spawned: usize,
    /// Worker processes lost mid-run (crash, kill, or injected fault).
    pub workers_lost: usize,
    /// Shard jobs re-dispatched to surviving workers after a loss.
    pub shards_resharded: usize,
    /// Shards built inline in the parent because every worker died or a
    /// shard exhausted its retry allowance.
    pub shards_built_inline: usize,
    /// Workers killed by the per-job deadline reaper.
    pub deadline_reaps: usize,
    /// Shard jobs re-dispatched after a backoff.
    pub retries: usize,
    /// Typed protocol faults observed on worker pipes.
    pub proto_faults: usize,
    /// Total pipe bytes of worker reply frames.
    pub wire_bytes: u64,
    /// Round-trip latency of answered liveness probes (the handshake
    /// heartbeats), aggregated over every worker.
    pub heartbeat: HeartbeatStats,
    /// Wall-clock nanoseconds partitioning the stream.
    pub partition_ns: u64,
    /// Wall-clock nanoseconds dispatching shards and collecting
    /// snapshots from workers.
    pub map_ns: u64,
    /// Wall-clock nanoseconds in the reduce + recover + solve tail.
    pub reduce_solve_ns: u64,
}

/// The multiprocess executor: real OS worker subprocesses behind the
/// same map → tree-reduce → solve pipeline as [`crate::ParallelRunner`].
///
/// The parent partitions the stream with the *identical*
/// [`partition_edges`]/[`partition_updates`] + [`DistConfig::shard_seed`]
/// as the in-process executors, ships each shard to a worker over the
/// framed pipe protocol ([`crate::proto`]), and tree-reduces the
/// restored snapshots with the same [`tree_reduce_with`]. Locals are
/// always ordered by shard index regardless of which worker produced
/// them, so the reduce sees the exact sequence the in-process executors
/// see — the selected family is identical (property-tested in
/// `tests/process_execution.rs`).
///
/// ## Worker loss and recovery
///
/// Each worker gets a dedicated reader thread and a per-job deadline, so
/// every way a worker can fail maps to a *typed* observation in the
/// dispatch loop: a crash is EOF from its reader, a hang or
/// over-deadline delay is reaped by the internal deadline wheel, a corrupt
/// reply or version mismatch is a checksum/version error from
/// [`read_message`]. In every case the worker is killed and its
/// in-flight shard re-dispatched after an exponential backoff
/// ([`RetryPolicy`]). Because every shard job is self-contained
/// (params, seed, edges) and `merge_from` is associative and
/// commutative, recovery cannot change the result: the same locals are
/// produced, only by different processes. A shard that exhausts its
/// attempts or the run-wide retry budget — or outlives every worker —
/// is built inline in the parent (counted in
/// [`ProcessResult::shards_built_inline`]) rather than failing the run.
///
/// ## Fault injection
///
/// A [`FaultPlan`] threads deterministic faults into the job frames
/// ([`Self::with_fault_plan`]); each shard's planned fault is consumed
/// on its first dispatch, so the recovery machinery above is exercised
/// reproducibly from a seed (see `tests/chaos.rs`).
#[derive(Clone, Debug)]
pub struct ProcessRunner {
    cfg: DistConfig,
    command: WorkerCommand,
    processes: usize,
    fan_in: usize,
    batch: usize,
    ship: ShipFormat,
    fail_shards: Vec<usize>,
    fault_plan: FaultPlan,
    job_timeout: Duration,
    retry: RetryPolicy,
}

/// Update-batch size workers use (mirrors the parallel executor).
const PROCESS_DEFAULT_BATCH: usize = 1 << 12;
/// Reduce fan-in (mirrors the parallel executor).
const PROCESS_DEFAULT_FAN_IN: usize = 4;
/// Default per-job deadline — generous for real shard builds, tight
/// enough that an operator notices a hung fleet inside a minute.
const PROCESS_DEFAULT_JOB_TIMEOUT: Duration = Duration::from_secs(30);

impl ProcessRunner {
    /// A runner over `processes ≥ 1` workers spawned via `command`.
    pub fn new(cfg: DistConfig, command: WorkerCommand, processes: usize) -> Self {
        assert!(processes >= 1, "need at least one worker process");
        ProcessRunner {
            cfg,
            command,
            processes,
            fan_in: PROCESS_DEFAULT_FAN_IN,
            batch: PROCESS_DEFAULT_BATCH,
            ship: ShipFormat::Binary,
            fail_shards: Vec::new(),
            fault_plan: FaultPlan::none(),
            job_timeout: PROCESS_DEFAULT_JOB_TIMEOUT,
            retry: RetryPolicy::default(),
        }
    }

    /// Override the reduce fan-in (`≥ 2`).
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        assert!(fan_in >= 2, "fan-in must be at least 2");
        self.fan_in = fan_in;
        self
    }

    /// Override the worker update-batch size (`≥ 1`).
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }

    /// Override the ship format for worker replies *and* the parent-side
    /// reduce. [`ShipFormat::InMemory`] cannot cross a pipe and is
    /// mapped to [`ShipFormat::Binary`] for the replies (the reduce
    /// still honors it).
    pub fn with_ship_format(mut self, ship: ShipFormat) -> Self {
        self.ship = ship;
        self
    }

    /// Fault injection shorthand: the *first* dispatch of each listed
    /// shard index carries a [`Fault::Crash`], making its worker die
    /// without replying — the simulated worker-kill the recovery tests
    /// and the BENCH_6 gate exercise. The shard is then re-dispatched
    /// normally. For richer schedules (hangs, delays, corrupt frames)
    /// use [`Self::with_fault_plan`]; explicit crashes listed here
    /// override the plan for those shards.
    pub fn with_injected_failures(mut self, shards: impl IntoIterator<Item = usize>) -> Self {
        self.fail_shards = shards.into_iter().collect();
        self
    }

    /// Thread a deterministic [`FaultPlan`] through the job frames: each
    /// shard's scheduled fault is consumed on that shard's first
    /// dispatch and executed by the worker that receives it.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the per-job deadline. A worker that has not replied
    /// within this window is reaped (killed) and its shard re-dispatched
    /// — the only detector that catches a *hung* worker.
    pub fn with_job_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "job timeout must be positive");
        self.job_timeout = timeout;
        self
    }

    /// Override the retry/backoff discipline for failed shard jobs.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        assert!(retry.max_attempts >= 1, "need at least one attempt");
        self.retry = retry;
        self
    }

    /// The reply encoding actually used on the pipes.
    fn pipe_format(&self) -> ShipFormat {
        match self.ship {
            ShipFormat::Json => ShipFormat::Json,
            _ => ShipFormat::Binary,
        }
    }

    /// Spawn workers and drive every shard job to a snapshot.
    ///
    /// Event-driven dispatch: each worker's stdout is drained by a
    /// dedicated reader thread into one shared channel, and every
    /// outstanding job (or liveness probe) is armed on the
    /// [`DeadlineWheel`]. The loop waits for whichever comes first — a
    /// reply, a deadline expiry, or a backoff maturing — so a hung
    /// worker can never block the parent. At most one job is outstanding
    /// per worker, so pipe buffers cannot deadlock. A failed shard
    /// (crash, reaped hang, corrupt reply) is re-dispatched after an
    /// exponential backoff until its [`RetryPolicy`] allowance runs out,
    /// at which point — like any shard that outlives every worker — it
    /// is built inline via `inline`.
    fn dispatch<Snap>(
        &self,
        n_shards: usize,
        make_job: impl Fn(usize, Option<Fault>) -> Message,
        extract: impl Fn(Message) -> Option<Snap>,
        inline: impl Fn(usize) -> Snap,
    ) -> Result<DispatchOutcome<Snap>, RunError> {
        let want = self.processes.min(n_shards).max(1);
        let (tx, rx) = channel::<WorkerEvent>();
        let mut slots: Vec<WorkerSlot> = Vec::with_capacity(want);
        let mut spawn_err: Option<std::io::Error> = None;
        for wi in 0..want {
            match self.command.spawn() {
                Ok(mut child) => {
                    let stdin = child.stdin.take().expect("worker stdin is piped");
                    let stdout = child.stdout.take().expect("worker stdout is piped");
                    slots.push(WorkerSlot {
                        child,
                        stdin: Some(stdin),
                        reader: Some(spawn_reader(wi, BufReader::new(stdout), tx.clone())),
                        alive: true,
                        inflight: Inflight::Idle,
                        probe_sent: None,
                    });
                }
                Err(e) => spawn_err = Some(e),
            }
        }
        // The readers hold the only remaining senders, so `rx` reports
        // Disconnected exactly when every worker's stream has ended.
        drop(tx);
        if slots.is_empty() {
            return Err(RunError::Spawn(spawn_err.unwrap_or_else(|| {
                std::io::Error::other("no worker could be spawned")
            })));
        }
        let workers_spawned = slots.len();
        let mut wheel = DeadlineWheel::new(slots.len());

        let mut faults = self.fault_plan.schedule(n_shards);
        for &s in &self.fail_shards {
            if s < n_shards {
                faults[s] = Some(Fault::Crash);
            }
        }

        let started = Instant::now();
        let mut queue: VecDeque<usize> = (0..n_shards).collect();
        let mut ready_at: Vec<Instant> = vec![started; n_shards];
        let mut attempts: Vec<usize> = vec![0; n_shards];
        let mut snapshots: Vec<Option<Snap>> = (0..n_shards).map(|_| None).collect();
        let mut resolved = 0usize;
        let mut retries_spent = 0usize;
        let mut workers_lost = 0usize;
        let mut shards_resharded = 0usize;
        let mut shards_built_inline = 0usize;
        let mut deadline_reaps = 0usize;
        let mut retries = 0usize;
        let mut proto_faults = 0usize;
        let mut wire_bytes = 0u64;
        let mut heartbeat = HeartbeatStats::default();

        // Kill a worker and stop tracking its deadline. Its reader
        // thread drains to EOF on its own; any event it already queued
        // is discarded later by the `alive` check.
        macro_rules! reap_worker {
            ($wi:expr) => {{
                let wi = $wi;
                slots[wi].mark_dead();
                let _ = slots[wi].child.kill();
                wheel.disarm(wi);
                workers_lost += 1;
            }};
        }

        // A shard's dispatch failed: retry it after a backoff, or build
        // it inline once its attempts or the run-wide budget run out.
        macro_rules! fail_shard {
            ($shard:expr) => {{
                let shard = $shard;
                attempts[shard] += 1;
                retries_spent += 1;
                if attempts[shard] >= self.retry.max_attempts || retries_spent > self.retry.budget {
                    snapshots[shard] = Some(inline(shard));
                    shards_built_inline += 1;
                    resolved += 1;
                } else {
                    retries += 1;
                    shards_resharded += 1;
                    ready_at[shard] = Instant::now() + self.retry.backoff_after(attempts[shard]);
                    queue.push_front(shard);
                }
            }};
        }

        // Handshake: probe every worker before trusting it with a
        // shard. A live, version-compatible worker echoes the nonce; an
        // old-version or broken one surfaces as a typed error or EOF
        // and is reaped before it can eat a job.
        for wi in 0..slots.len() {
            let nonce = 0x5052_4F42_0000_0000 | wi as u64;
            let stdin = slots[wi].stdin.as_mut().expect("alive worker has stdin");
            match write_message(stdin, &Message::Heartbeat { nonce }) {
                Ok(_) => {
                    slots[wi].inflight = Inflight::Probe(nonce);
                    slots[wi].probe_sent = Some(Instant::now());
                    wheel.arm(wi, started + self.job_timeout);
                }
                Err(_) => reap_worker!(wi),
            }
        }

        while resolved < n_shards {
            if !slots.iter().any(|s| s.alive) {
                break; // Total worker loss: the tail below builds inline.
            }

            // Assign phase: every idle worker takes the next shard whose
            // backoff has matured.
            loop {
                let now = Instant::now();
                let Some(wi) = slots
                    .iter()
                    .position(|s| s.alive && s.inflight == Inflight::Idle)
                else {
                    break;
                };
                let Some(pos) = queue.iter().position(|&s| ready_at[s] <= now) else {
                    break;
                };
                let shard = queue.remove(pos).expect("position is in range");
                // Network faults (drop/stall/dup) model the transport;
                // on parent-owned pipes there is no transport to break,
                // so only worker faults ride in pipe jobs. The socket
                // executor injects the network kinds itself.
                let fault = faults[shard].take().filter(|f| !f.is_network());
                let job = make_job(shard, fault);
                let stdin = slots[wi].stdin.as_mut().expect("alive worker has stdin");
                match write_message(stdin, &job) {
                    Ok(_) => {
                        slots[wi].inflight = Inflight::Shard(shard);
                        wheel.arm(wi, now + self.job_timeout);
                    }
                    Err(_) => {
                        reap_worker!(wi);
                        shards_resharded += 1;
                        queue.push_front(shard);
                    }
                }
            }

            // Wait phase: the next reply, deadline expiry, or backoff
            // maturing — whichever comes first.
            let now = Instant::now();
            let mut wake = wheel.next_deadline();
            if slots
                .iter()
                .any(|s| s.alive && s.inflight == Inflight::Idle)
            {
                if let Some(t) = queue.iter().map(|&s| ready_at[s]).min() {
                    wake = Some(wake.map_or(t, |w| w.min(t)));
                }
            }
            let Some(wake) = wake else {
                // Nothing inflight and nothing queued for an idle worker
                // while shards remain: every survivor is idle and the
                // queue is empty, which cannot happen — but degrade to
                // inline rather than loop.
                break;
            };

            match rx.recv_timeout(wake.saturating_duration_since(now)) {
                Ok((wi, event)) => {
                    if !slots[wi].alive {
                        // A stale event from a worker reaped earlier
                        // (its shard was already requeued or resolved).
                        continue;
                    }
                    let state = std::mem::replace(&mut slots[wi].inflight, Inflight::Idle);
                    wheel.disarm(wi);
                    match event {
                        Ok((msg, bytes)) => match (state, msg) {
                            (Inflight::Probe(expect), Message::Heartbeat { nonce })
                                if nonce == expect =>
                            {
                                // Live and version-compatible; now
                                // eligible for jobs. The echo closes the
                                // probe's round-trip measurement.
                                if let Some(at) = slots[wi].probe_sent.take() {
                                    heartbeat.record(at.elapsed());
                                }
                            }
                            (Inflight::Shard(shard), msg) => match extract(msg) {
                                Some(snap) => {
                                    snapshots[shard] = Some(snap);
                                    resolved += 1;
                                    wire_bytes += bytes;
                                }
                                None => {
                                    // Decoded frame, wrong species of
                                    // reply: a protocol violation.
                                    proto_faults += 1;
                                    reap_worker!(wi);
                                    fail_shard!(shard);
                                }
                            },
                            _ => {
                                // Unsolicited or mismatched frame.
                                proto_faults += 1;
                                reap_worker!(wi);
                            }
                        },
                        Err(e) => {
                            if matches!(e, ProtoError::Wire(_)) {
                                // Corrupt frame or version mismatch —
                                // typed, counted, recovered.
                                proto_faults += 1;
                            }
                            reap_worker!(wi);
                            if let Inflight::Shard(shard) = state {
                                fail_shard!(shard);
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    for wi in wheel.expired(now) {
                        if !slots[wi].alive {
                            continue;
                        }
                        // The deadline reaper: the only detector that
                        // catches a hung (or over-deadline) worker.
                        deadline_reaps += 1;
                        let state = slots[wi].inflight;
                        reap_worker!(wi);
                        if let Inflight::Shard(shard) = state {
                            fail_shard!(shard);
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every reader exited: no worker can ever reply.
                    for wi in 0..slots.len() {
                        if !slots[wi].alive {
                            continue;
                        }
                        let state = slots[wi].inflight;
                        reap_worker!(wi);
                        if let Inflight::Shard(shard) = state {
                            fail_shard!(shard);
                        }
                    }
                }
            }
        }

        // Unresolved shards — total worker loss or exhausted budgets —
        // degrade to inline builds so the run still completes (the
        // counters expose the degradation).
        for (shard, snap) in snapshots.iter_mut().enumerate() {
            if snap.is_none() {
                *snap = Some(inline(shard));
                shards_built_inline += 1;
            }
        }

        // Wind down: polite shutdown for survivors, reap everything,
        // then join the readers (killing the children EOFs their
        // streams, so every reader exits promptly).
        for slot in &mut slots {
            if slot.alive {
                if let Some(stdin) = slot.stdin.as_mut() {
                    let _ = write_message(stdin, &Message::Shutdown);
                }
            }
            slot.stdin = None;
            let _ = slot.child.kill();
            let _ = slot.child.wait();
        }
        drop(rx);
        for slot in &mut slots {
            if let Some(reader) = slot.reader.take() {
                let _ = reader.join();
            }
        }

        Ok(DispatchOutcome {
            snapshots: snapshots
                .into_iter()
                .map(|s| s.expect("every shard resolved"))
                .collect(),
            workers_spawned,
            workers_lost,
            shards_resharded,
            shards_built_inline,
            deadline_reaps,
            retries,
            proto_faults,
            wire_bytes,
            heartbeat,
        })
    }

    /// Run the insertion-only pipeline over real worker processes.
    ///
    /// Returns `Err` only when not a single worker could be spawned;
    /// worker loss after that is recovered per the type-level docs.
    pub fn run(&self, stream: &dyn EdgeStream) -> Result<ProcessResult, RunError> {
        let cfg = &self.cfg;
        let params = cfg.sketch_params(stream.num_sets());
        let ship = self.pipe_format();

        let t0 = Instant::now();
        let shards = partition_edges(stream, cfg.machines, cfg.shard_seed(), self.batch);
        let partition_ns = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let outcome = self.dispatch(
            shards.len(),
            |shard, fault| Message::JobSketch {
                params,
                seed: cfg.seed,
                ship,
                fault,
                batch: self.batch,
                edges: shards[shard].clone(),
            },
            |msg| match msg {
                Message::ReplySketch { snapshot, .. } => Some(snapshot),
                _ => None,
            },
            |shard| {
                let mut s = ThresholdSketch::new(params, cfg.seed);
                for chunk in shards[shard].chunks(self.batch) {
                    s.update_batch(chunk);
                }
                SketchSnapshot::of(&s)
            },
        )?;
        let map_ns = t1.elapsed().as_nanos() as u64;

        let t2 = Instant::now();
        let locals: Vec<ThresholdSketch> = outcome.snapshots.iter().map(|s| s.restore()).collect();
        let (merged, rounds) = tree_reduce_with(locals, self.fan_in, self.ship);
        let trace = bucket_greedy_k_cover(&merged.csr_view(), cfg.k);
        let family = trace.family();
        let reduce_solve_ns = t2.elapsed().as_nanos() as u64;

        Ok(ProcessResult {
            estimated_coverage: merged.estimate_coverage(&family),
            merged_edges: merged.edges_stored(),
            family,
            rounds,
            workers_spawned: outcome.workers_spawned,
            workers_lost: outcome.workers_lost,
            shards_resharded: outcome.shards_resharded,
            shards_built_inline: outcome.shards_built_inline,
            deadline_reaps: outcome.deadline_reaps,
            retries: outcome.retries,
            proto_faults: outcome.proto_faults,
            wire_bytes: outcome.wire_bytes,
            heartbeat: outcome.heartbeat,
            partition_ns,
            map_ns,
            reduce_solve_ns,
        })
    }

    /// Run the dynamic (insert/delete) pipeline over real worker
    /// processes.
    ///
    /// # Panics
    ///
    /// Panics if no subsampling level of the merged sketch decodes (the
    /// sketch was sized with too few levels for the surviving edges).
    pub fn run_dynamic(
        &self,
        stream: &dyn DynamicEdgeStream,
    ) -> Result<DynProcessResult, RunError> {
        let cfg = &self.cfg;
        let params = cfg.dynamic_sketch_params(stream.num_sets());
        let ship = self.pipe_format();

        let t0 = Instant::now();
        let shards = partition_updates(stream, cfg.machines, cfg.shard_seed(), self.batch);
        let partition_ns = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let outcome = self.dispatch(
            shards.len(),
            |shard, fault| Message::JobDynamic {
                params,
                seed: cfg.seed,
                ship,
                fault,
                batch: self.batch,
                updates: shards[shard].clone(),
            },
            |msg| match msg {
                Message::ReplyDynamic { snapshot, .. } => Some(snapshot),
                _ => None,
            },
            |shard| {
                let mut s = DynamicSketch::new(params, cfg.seed);
                for chunk in shards[shard].chunks(self.batch) {
                    s.update_batch(chunk);
                }
                DynamicSnapshot::of(&s)
            },
        )?;
        let map_ns = t1.elapsed().as_nanos() as u64;

        let t2 = Instant::now();
        let locals: Vec<DynamicSketch> = outcome.snapshots.iter().map(|s| s.restore()).collect();
        let (merged, rounds) = tree_reduce_with(locals, self.fan_in, self.ship);
        let (family, estimated_coverage, sample) = recover_and_solve(&merged, cfg.k);
        let reduce_solve_ns = t2.elapsed().as_nanos() as u64;

        Ok(DynProcessResult {
            family,
            estimated_coverage,
            sample_level: sample.level,
            sampling_p: sample.sampling_p,
            recovered_edges: sample.edges.len(),
            rounds,
            workers_spawned: outcome.workers_spawned,
            workers_lost: outcome.workers_lost,
            shards_resharded: outcome.shards_resharded,
            shards_built_inline: outcome.shards_built_inline,
            deadline_reaps: outcome.deadline_reaps,
            retries: outcome.retries,
            proto_faults: outcome.proto_faults,
            wire_bytes: outcome.wire_bytes,
            heartbeat: outcome.heartbeat,
            partition_ns,
            map_ns,
            reduce_solve_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_k_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn workload() -> (VecStream, coverage_core::CoverageInstance, usize) {
        let p = planted_k_cover(40, 5_000, 4, 150, 3);
        let mut s = VecStream::from_instance(&p.instance);
        ArrivalOrder::Random(5).apply(s.edges_mut());
        (s, p.instance, p.optimal_value)
    }

    #[test]
    fn output_invariant_in_machine_count() {
        let (stream, _, _) = workload();
        let mut families = Vec::new();
        for machines in [1usize, 2, 4, 8] {
            let cfg =
                DistConfig::new(machines, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
            let res = distributed_k_cover(&stream, &cfg);
            families.push(res.family);
        }
        for w in families.windows(2) {
            assert_eq!(w[0], w[1], "family must not depend on machine count");
        }
    }

    #[test]
    fn serial_simulation_equals_threaded_simulation() {
        let (stream, _, _) = workload();
        for machines in [1usize, 3, 8] {
            let cfg =
                DistConfig::new(machines, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
            let threaded = distributed_k_cover(&stream, &cfg);
            let serial = distributed_k_cover_serial(&stream, &cfg);
            assert_eq!(serial.family, threaded.family, "machines={machines}");
            assert_eq!(serial.merged_edges, threaded.merged_edges);
            assert_eq!(serial.per_machine.len(), threaded.per_machine.len());
        }
    }

    #[test]
    fn quality_matches_single_machine_algorithm3() {
        let (stream, inst, opt) = workload();
        let cfg = DistConfig::new(4, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
        let res = distributed_k_cover(&stream, &cfg);
        let achieved = inst.coverage(&res.family);
        assert!(
            achieved as f64 >= 0.85 * opt as f64,
            "distributed quality dropped: {achieved}/{opt}"
        );
    }

    #[test]
    fn per_machine_space_shrinks_with_machines() {
        let (stream, _, _) = workload();
        let small = DistConfig::new(1, 4, 0.3, 7).with_sizing(SketchSizing::Budget(2_000));
        let large = DistConfig::new(8, 4, 0.3, 7).with_sizing(SketchSizing::Budget(2_000));
        let one = distributed_k_cover(&stream, &small);
        let eight = distributed_k_cover(&stream, &large);
        let max_one = one.per_machine.iter().map(|r| r.peak_edges).max().unwrap();
        let max_eight = eight
            .per_machine
            .iter()
            .map(|r| r.peak_edges)
            .max()
            .unwrap();
        assert!(
            max_eight < max_one,
            "sharding should reduce per-machine load: {max_one} vs {max_eight}"
        );
        assert_eq!(eight.per_machine.len(), 8);
    }

    #[test]
    fn merged_edges_respect_budget() {
        let (stream, _, _) = workload();
        let cfg = DistConfig::new(4, 4, 0.3, 7).with_sizing(SketchSizing::Budget(500));
        let res = distributed_k_cover(&stream, &cfg);
        let params = cfg.sketch_params(40);
        assert!(res.merged_edges <= params.max_edges());
    }

    #[test]
    fn dynamic_output_invariant_in_machine_count() {
        let p = planted_k_cover(30, 3_000, 4, 100, 3).instance;
        let w = coverage_data::churn_workload(&p, 0.4, 9);
        let mut families = Vec::new();
        for machines in [1usize, 2, 5] {
            let cfg =
                DistConfig::new(machines, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
            let res = dynamic_distributed_k_cover(&w.stream, &cfg);
            families.push((res.family, res.sample_level, res.recovered_edges));
        }
        for win in families.windows(2) {
            assert_eq!(
                win[0], win[1],
                "dynamic result must not depend on machine count"
            );
        }
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.backoff_after(1), Duration::from_millis(10));
        assert_eq!(retry.backoff_after(2), Duration::from_millis(20));
        assert_eq!(retry.backoff_after(3), Duration::from_millis(40));
        assert_eq!(retry.backoff_after(20), Duration::from_millis(500));
    }

    #[test]
    fn deadline_wheel_tracks_the_soonest_deadline() {
        let mut wheel = DeadlineWheel::new(3);
        let now = Instant::now();
        assert_eq!(wheel.next_deadline(), None);
        assert!(wheel.expired(now).is_empty());
        wheel.arm(0, now + Duration::from_secs(5));
        wheel.arm(2, now + Duration::from_secs(1));
        assert_eq!(wheel.next_deadline(), Some(now + Duration::from_secs(1)));
        assert_eq!(wheel.expired(now + Duration::from_secs(2)), vec![2]);
        wheel.disarm(2);
        assert_eq!(wheel.next_deadline(), Some(now + Duration::from_secs(5)));
        assert_eq!(
            wheel.expired(now + Duration::from_secs(10)),
            vec![0],
            "disarmed slots never expire"
        );
    }

    #[test]
    fn run_error_is_typed_and_displayable() {
        let spawn = RunError::from(std::io::Error::other("nope"));
        assert!(matches!(spawn, RunError::Spawn(_)));
        assert!(spawn.to_string().contains("nope"));
        let panic = RunError::Panic(panic_message(Box::new("boom".to_string())));
        assert!(panic.to_string().contains("boom"));
        assert_eq!(panic_message(Box::new(17u32)), "non-string panic payload");
    }

    #[test]
    fn threaded_simulation_survives_a_machine_panic() {
        // The crossbeam shim converts a panicking scope into Err, which
        // distributed_k_cover must turn into a serial rebuild — never an
        // abort. Simulate by driving the shim directly the way the
        // executor does.
        let result = crossbeam::scope(|scope| {
            scope.spawn(|_| panic!("machine down"));
        });
        assert!(result.is_err(), "the shim must capture scoped panics");
    }

    #[test]
    fn dynamic_quality_matches_insertion_only_on_survivors() {
        let planted = planted_k_cover(30, 3_000, 4, 100, 7);
        let w = coverage_data::churn_workload(&planted.instance, 0.5, 13);
        let cfg = DistConfig::new(4, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
        let dyn_res = dynamic_distributed_k_cover(&w.stream, &cfg);
        // Insertion-only pipeline on the surviving graph.
        let surv_stream = VecStream::from_instance(&w.surviving);
        let ins_res = distributed_k_cover_serial(&surv_stream, &cfg);
        let dyn_cov = w.surviving.coverage(&dyn_res.family);
        let ins_cov = w.surviving.coverage(&ins_res.family);
        assert!(
            dyn_cov as f64 >= 0.9 * ins_cov as f64,
            "dynamic cover {dyn_cov} far below insertion-only {ins_cov}"
        );
    }
}
