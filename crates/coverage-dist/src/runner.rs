//! The map/reduce/solve drivers over simulated machines — the reference
//! executors for both stream models.
//!
//! Every executor here shares one **determinism contract** with the
//! parallel runner in [`crate::parallel`]: for a fixed [`DistConfig`]
//! (machines, seed, sizing), the selected cover is a pure function of
//! the input edge (multi)set — independent of threading, machine count
//! beyond sharding, merge order, and (for the dynamic pipeline) of the
//! interleaving of inserts and deletes. [`DistConfig::shard_seed`] and
//! [`DistConfig::sketch_params`]/[`DistConfig::dynamic_sketch_params`]
//! centralize the two knobs every executor must agree on for that to
//! hold.

use coverage_core::offline::bucket_greedy_k_cover;
use coverage_core::SetId;
use coverage_sketch::{DynamicSketch, DynamicSketchParams, SketchSizing, ThresholdSketch};
use coverage_stream::{DynamicEdgeStream, EdgeStream, SpaceReport};

use crate::partition::{DynamicShardedStream, ShardedStream};

/// Configuration of a distributed k-cover run.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Number of simulated machines `w ≥ 1`.
    pub machines: usize,
    /// Number of sets to select.
    pub k: usize,
    /// Accuracy parameter ε (Algorithm 3 semantics: sketch ε is ε/12).
    pub epsilon: f64,
    /// Sketch sizing policy (per machine; the merged sketch keeps the
    /// same budget).
    pub sizing: SketchSizing,
    /// Global hash seed — every machine must share it or merging is
    /// meaningless.
    pub seed: u64,
}

impl DistConfig {
    /// Practical defaults.
    pub fn new(machines: usize, k: usize, epsilon: f64, seed: u64) -> Self {
        assert!(machines >= 1, "need at least one machine");
        DistConfig {
            machines,
            k,
            epsilon,
            sizing: SketchSizing::Practical { c: 4.0 },
            seed,
        }
    }

    /// Override the sizing policy.
    pub fn with_sizing(mut self, sizing: SketchSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// The seed edges are sharded with. Every executor (threaded
    /// simulation, serial simulation, parallel runner) must derive it
    /// identically or their machines see different shards and the
    /// determinism contract breaks.
    pub fn shard_seed(&self) -> u64 {
        self.seed ^ 0x5A
    }

    /// The per-machine sketch parameters for a stream of `n` sets
    /// (Algorithm 3 semantics: the sketch runs at ε/12). Centralized for
    /// the same reason as [`shard_seed`](Self::shard_seed): every
    /// executor must size sketches identically or their merged results —
    /// and therefore the selected families — diverge.
    pub fn sketch_params(&self, n: usize) -> coverage_sketch::SketchParams {
        let eps_sketch = (self.epsilon / 12.0).clamp(1e-6, 1.0);
        self.sizing.params(n, self.k.max(1), eps_sketch)
    }

    /// The per-machine **dynamic** sketch parameters: the same shared
    /// sizing as [`sketch_params`](Self::sketch_params) wrapped in the
    /// default level/bank geometry. Centralized for the same reason —
    /// every dynamic executor must agree or merged cells are garbage.
    pub fn dynamic_sketch_params(&self, n: usize) -> DynamicSketchParams {
        DynamicSketchParams::new(self.sketch_params(n))
    }
}

/// Result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistResult {
    /// The selected family.
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage.
    pub estimated_coverage: f64,
    /// Per-machine space reports (each machine holds one local sketch).
    pub per_machine: Vec<SpaceReport>,
    /// The merged sketch's final size (edges) — the reducer's footprint.
    pub merged_edges: usize,
}

/// Fold a non-empty list of compatible sketches into one.
pub fn merge_all(mut sketches: Vec<ThresholdSketch>) -> ThresholdSketch {
    let mut acc = sketches.pop().expect("merge_all needs at least one sketch");
    for s in &sketches {
        acc.merge_from(s);
    }
    acc
}

/// Distributed Algorithm 3: shard edges across `machines`, sketch each
/// shard on its own thread, merge, and run greedy on the merged sketch.
///
/// Each simulated machine re-filters the **full** stream through its
/// [`ShardedStream`] view, so the harness does `O(machines·|E|)` work;
/// the machines run on scoped threads (one per machine). For a
/// single-threaded reference with identical output see
/// [`distributed_k_cover_serial`]; for the executor that removes the
/// re-filtering cost see [`crate::ParallelRunner`].
pub fn distributed_k_cover(stream: &(dyn EdgeStream + Sync), cfg: &DistConfig) -> DistResult {
    let params = cfg.sketch_params(stream.num_sets());

    // Map phase: one sketch per machine, built concurrently.
    let mut locals: Vec<Option<ThresholdSketch>> = (0..cfg.machines).map(|_| None).collect();
    crossbeam::scope(|scope| {
        for (i, slot) in locals.iter_mut().enumerate() {
            let stream_ref = stream;
            scope.spawn(move |_| {
                let shard = ShardedStream::new(stream_ref, i, cfg.machines, cfg.shard_seed());
                *slot = Some(ThresholdSketch::from_stream(params, cfg.seed, &shard));
            });
        }
    })
    .expect("machine thread panicked");
    let locals: Vec<ThresholdSketch> = locals.into_iter().map(|s| s.unwrap()).collect();
    solve_locals(locals, cfg)
}

/// [`distributed_k_cover`] with the machines simulated strictly one
/// after another on the calling thread — no concurrency anywhere.
/// Output-identical to the threaded simulation (same shards, same
/// seeds, associative merge); this is the honest single-threaded
/// baseline the `bench_smoke` perf gate compares the parallel executor
/// against, so the gate does not depend on how many cores the CI
/// machine happens to have.
pub fn distributed_k_cover_serial(stream: &dyn EdgeStream, cfg: &DistConfig) -> DistResult {
    let params = cfg.sketch_params(stream.num_sets());
    let locals: Vec<ThresholdSketch> = (0..cfg.machines)
        .map(|i| {
            let shard = ShardedStream::new(stream, i, cfg.machines, cfg.shard_seed());
            ThresholdSketch::from_stream(params, cfg.seed, &shard)
        })
        .collect();
    solve_locals(locals, cfg)
}

/// Shared reduce + solve tail of both simulations.
fn solve_locals(locals: Vec<ThresholdSketch>, cfg: &DistConfig) -> DistResult {
    let per_machine: Vec<SpaceReport> = locals.iter().map(|s| s.space_report()).collect();

    // Reduce phase: associative fold.
    let merged = merge_all(locals);

    // Solve phase: zero-rebuild query on the merged sketch's CSR view.
    let trace = bucket_greedy_k_cover(&merged.csr_view(), cfg.k);
    let family = trace.family();
    DistResult {
        estimated_coverage: merged.estimate_coverage(&family),
        merged_edges: merged.edges_stored(),
        per_machine,
        family,
    }
}

/// Result of a distributed **dynamic** run.
#[derive(Clone, Debug)]
pub struct DynDistResult {
    /// The selected family.
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage on the
    /// surviving graph.
    pub estimated_coverage: f64,
    /// Per-machine space reports.
    pub per_machine: Vec<SpaceReport>,
    /// The subsampling level the merged sketch decoded at.
    pub sample_level: usize,
    /// That level's sampling probability `p = 2^{−level}`.
    pub sampling_p: f64,
    /// Surviving edges recovered from the merged sketch.
    pub recovered_edges: usize,
}

/// Distributed **dynamic** k-cover: shard the signed updates across
/// `machines` (deletes co-located with their inserts), build one
/// [`DynamicSketch`] per machine, merge by cell-wise addition, recover
/// the densest decodable level, and run greedy on the recovered
/// degree-capped instance.
///
/// Because the dynamic sketch is linear, the merged sketch is
/// **bit-identical** to a single-machine build over the whole stream —
/// the determinism contract holds exactly, not just up to tie-breaking.
///
/// # Panics
///
/// Panics if no subsampling level decodes (the sketch was sized with
/// too few levels for the surviving edge count).
pub fn dynamic_distributed_k_cover(
    stream: &dyn DynamicEdgeStream,
    cfg: &DistConfig,
) -> DynDistResult {
    let params = cfg.dynamic_sketch_params(stream.num_sets());
    let locals: Vec<DynamicSketch> = (0..cfg.machines)
        .map(|i| {
            let shard = DynamicShardedStream::new(stream, i, cfg.machines, cfg.shard_seed());
            DynamicSketch::from_stream(params, cfg.seed, &shard)
        })
        .collect();
    solve_dynamic_locals(locals, cfg)
}

/// Recover + greedy-solve tail shared by every dynamic executor: decode
/// the merged sketch's densest level and run greedy on the recovered,
/// degree-capped instance. Returns `(family, estimated_coverage,
/// sample)`.
pub(crate) fn recover_and_solve(
    merged: &DynamicSketch,
    k: usize,
) -> (Vec<SetId>, f64, coverage_sketch::DynamicSample) {
    let sample = merged.recover_expect();
    let trace = bucket_greedy_k_cover(&merged.csr_view(&sample), k);
    let family = trace.family();
    let estimated = merged.estimate_coverage(&sample, &family);
    (family, estimated, sample)
}

/// Shared reduce + recover + solve tail of the serial dynamic executors.
pub(crate) fn solve_dynamic_locals(locals: Vec<DynamicSketch>, cfg: &DistConfig) -> DynDistResult {
    let per_machine: Vec<SpaceReport> = locals.iter().map(|s| s.space_report()).collect();
    let mut iter = locals.into_iter();
    let mut merged = iter.next().expect("at least one machine");
    for s in iter {
        merged.merge_from(&s);
    }
    let (family, estimated_coverage, sample) = recover_and_solve(&merged, cfg.k);
    DynDistResult {
        estimated_coverage,
        per_machine,
        sample_level: sample.level,
        sampling_p: sample.sampling_p,
        recovered_edges: sample.edges.len(),
        family,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_k_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn workload() -> (VecStream, coverage_core::CoverageInstance, usize) {
        let p = planted_k_cover(40, 5_000, 4, 150, 3);
        let mut s = VecStream::from_instance(&p.instance);
        ArrivalOrder::Random(5).apply(s.edges_mut());
        (s, p.instance, p.optimal_value)
    }

    #[test]
    fn output_invariant_in_machine_count() {
        let (stream, _, _) = workload();
        let mut families = Vec::new();
        for machines in [1usize, 2, 4, 8] {
            let cfg =
                DistConfig::new(machines, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
            let res = distributed_k_cover(&stream, &cfg);
            families.push(res.family);
        }
        for w in families.windows(2) {
            assert_eq!(w[0], w[1], "family must not depend on machine count");
        }
    }

    #[test]
    fn serial_simulation_equals_threaded_simulation() {
        let (stream, _, _) = workload();
        for machines in [1usize, 3, 8] {
            let cfg =
                DistConfig::new(machines, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
            let threaded = distributed_k_cover(&stream, &cfg);
            let serial = distributed_k_cover_serial(&stream, &cfg);
            assert_eq!(serial.family, threaded.family, "machines={machines}");
            assert_eq!(serial.merged_edges, threaded.merged_edges);
            assert_eq!(serial.per_machine.len(), threaded.per_machine.len());
        }
    }

    #[test]
    fn quality_matches_single_machine_algorithm3() {
        let (stream, inst, opt) = workload();
        let cfg = DistConfig::new(4, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
        let res = distributed_k_cover(&stream, &cfg);
        let achieved = inst.coverage(&res.family);
        assert!(
            achieved as f64 >= 0.85 * opt as f64,
            "distributed quality dropped: {achieved}/{opt}"
        );
    }

    #[test]
    fn per_machine_space_shrinks_with_machines() {
        let (stream, _, _) = workload();
        let small = DistConfig::new(1, 4, 0.3, 7).with_sizing(SketchSizing::Budget(2_000));
        let large = DistConfig::new(8, 4, 0.3, 7).with_sizing(SketchSizing::Budget(2_000));
        let one = distributed_k_cover(&stream, &small);
        let eight = distributed_k_cover(&stream, &large);
        let max_one = one.per_machine.iter().map(|r| r.peak_edges).max().unwrap();
        let max_eight = eight
            .per_machine
            .iter()
            .map(|r| r.peak_edges)
            .max()
            .unwrap();
        assert!(
            max_eight < max_one,
            "sharding should reduce per-machine load: {max_one} vs {max_eight}"
        );
        assert_eq!(eight.per_machine.len(), 8);
    }

    #[test]
    fn merged_edges_respect_budget() {
        let (stream, _, _) = workload();
        let cfg = DistConfig::new(4, 4, 0.3, 7).with_sizing(SketchSizing::Budget(500));
        let res = distributed_k_cover(&stream, &cfg);
        let params = cfg.sketch_params(40);
        assert!(res.merged_edges <= params.max_edges());
    }

    #[test]
    fn dynamic_output_invariant_in_machine_count() {
        let p = planted_k_cover(30, 3_000, 4, 100, 3).instance;
        let w = coverage_data::churn_workload(&p, 0.4, 9);
        let mut families = Vec::new();
        for machines in [1usize, 2, 5] {
            let cfg =
                DistConfig::new(machines, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
            let res = dynamic_distributed_k_cover(&w.stream, &cfg);
            families.push((res.family, res.sample_level, res.recovered_edges));
        }
        for win in families.windows(2) {
            assert_eq!(
                win[0], win[1],
                "dynamic result must not depend on machine count"
            );
        }
    }

    #[test]
    fn dynamic_quality_matches_insertion_only_on_survivors() {
        let planted = planted_k_cover(30, 3_000, 4, 100, 7);
        let w = coverage_data::churn_workload(&planted.instance, 0.5, 13);
        let cfg = DistConfig::new(4, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
        let dyn_res = dynamic_distributed_k_cover(&w.stream, &cfg);
        // Insertion-only pipeline on the surviving graph.
        let surv_stream = VecStream::from_instance(&w.surviving);
        let ins_res = distributed_k_cover_serial(&surv_stream, &cfg);
        let dyn_cov = w.surviving.coverage(&dyn_res.family);
        let ins_cov = w.surviving.coverage(&ins_res.family);
        assert!(
            dyn_cov as f64 >= 0.9 * ins_cov as f64,
            "dynamic cover {dyn_cov} far below insertion-only {ins_cov}"
        );
    }
}
