//! The parent↔worker pipe protocol of the subprocess executor.
//!
//! [`ProcessRunner`](crate::ProcessRunner) talks to its workers over
//! plain stdin/stdout pipes with length-prefixed, checksummed message
//! frames — the same envelope discipline as the snapshot wire format
//! (`coverage_sketch::wire`), under its own magic so a snapshot frame
//! can never be confused for a protocol message.
//!
//! ## Frame layout (version 2)
//!
//! | offset   | size | field                                   |
//! |----------|------|-----------------------------------------|
//! | 0        | 4    | magic `b"CVPR"`                         |
//! | 4        | 2    | protocol version, `u16` LE (currently 2)|
//! | 6        | 1    | message kind                            |
//! | 7        | 1    | reserved (0)                            |
//! | 8        | 8    | payload length `u64` LE                 |
//! | 16       | len  | payload                                 |
//! | 16 + len | 8    | FNV-1a 64 checksum of bytes `0..16+len` |
//!
//! Version 2 replaced version 1's boolean `fail` flag in the job
//! payloads with a generalized fault descriptor (a [`Fault`] code plus
//! argument) and added the [`Message::Heartbeat`] probe. A frame from
//! either side of the version fence is reported as a **typed**
//! [`WireError::UnsupportedVersion`] — an old-version worker can never
//! look like a hang or a crash. Payloads above [`MAX_FRAME_PAYLOAD`]
//! are rejected before any allocation.
//!
//! ## Conversation
//!
//! The parent sends one *job* (a shard of edges or signed updates plus
//! the sketch parameters) and the worker answers with one *reply*
//! carrying its local sketch's snapshot, encoded per the job's requested
//! [`ShipFormat`] (binary frames in deployment; JSON kept for
//! wire-fidelity comparisons). A [`Message::Heartbeat`] is echoed back
//! verbatim — the parent's liveness/version probe. A
//! [`Message::Shutdown`] — or simply closing the pipe — ends the worker.
//! Jobs carry an optional [`Fault`] for deterministic fault injection:
//! the worker executes it (crash without replying, hang forever, delay,
//! or corrupt its reply frame), and the parent observes each through a
//! different detector — EOF, the deadline reaper, nothing, or the frame
//! checksum (see `runner.rs`).

use std::io::{Read, Write};

use coverage_core::Edge;
use coverage_sketch::wire::{checksum64, WireReader, WireWriter};
use coverage_sketch::{
    DynamicSketchParams, DynamicSnapshot, SketchParams, SketchSnapshot, WireError,
};
use coverage_stream::SignedEdge;

use crate::fault::Fault;
use crate::rounds::ShipFormat;

/// Protocol frame magic (distinct from the snapshot frame magic).
pub const PROTO_MAGIC: [u8; 4] = *b"CVPR";
/// Current protocol version. Version 2 generalized the job fault flag
/// and added the heartbeat probe; version-1 frames are rejected as
/// typed [`WireError::UnsupportedVersion`] errors.
pub const PROTO_VERSION: u16 = 2;

/// Hard cap on a frame's payload length. A length field above this is a
/// typed wire error detected **before** the payload buffer is allocated,
/// so a corrupt or hostile length can never balloon parent memory.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 28;

const KIND_JOB_SKETCH: u8 = 1;
const KIND_JOB_DYNAMIC: u8 = 2;
const KIND_REPLY_SKETCH: u8 = 3;
const KIND_REPLY_DYNAMIC: u8 = 4;
const KIND_SHUTDOWN: u8 = 5;
const KIND_HEARTBEAT: u8 = 6;
const KIND_CHUNK_START_SKETCH: u8 = 7;
const KIND_CHUNK_START_DYNAMIC: u8 = 8;
const KIND_JOB_CHUNK: u8 = 9;
const KIND_CHUNK_ACK: u8 = 10;

const SHIP_BINARY: u8 = 0;
const SHIP_JSON: u8 = 1;

const FAULT_NONE: u8 = 0;
const FAULT_CRASH: u8 = 1;
const FAULT_HANG: u8 = 2;
const FAULT_DELAY: u8 = 3;
const FAULT_CORRUPT: u8 = 4;
const FAULT_DROP: u8 = 5;
const FAULT_STALL: u8 = 6;
const FAULT_DUP: u8 = 7;

const CHUNK_EDGES: u8 = 0;
const CHUNK_UPDATES: u8 = 1;

/// A protocol failure: either the pipe broke or a frame was corrupt.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying pipe failed mid-frame.
    Io(std::io::Error),
    /// A frame or its payload failed validation.
    Wire(WireError),
    /// The pipe closed cleanly between frames (worker exit / EOF).
    Eof,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "pipe error: {e}"),
            ProtoError::Wire(e) => write!(f, "protocol frame error: {e}"),
            ProtoError::Eof => write!(f, "pipe closed"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        ProtoError::Wire(e)
    }
}

/// One protocol message.
#[derive(Clone, Debug)]
pub enum Message {
    /// Parent → worker: build an insertion-only sketch over `edges`.
    JobSketch {
        /// Sketch parameters for the worker's local sketch.
        params: SketchParams,
        /// Shared hash seed (workers must agree to merge).
        seed: u64,
        /// How the reply snapshot travels back.
        ship: ShipFormat,
        /// Deterministic fault injection: the worker executes this
        /// fault instead of (or around) replying normally.
        fault: Option<Fault>,
        /// Update-batch size (parity with the in-process executors).
        batch: usize,
        /// The shard of edges to ingest.
        edges: Vec<Edge>,
    },
    /// Parent → worker: build a dynamic sketch over signed `updates`.
    JobDynamic {
        /// Dynamic sketch parameters for the worker's local sketch.
        params: DynamicSketchParams,
        /// Shared hash seed (workers must agree to merge).
        seed: u64,
        /// How the reply snapshot travels back.
        ship: ShipFormat,
        /// Deterministic fault injection: the worker executes this
        /// fault instead of (or around) replying normally.
        fault: Option<Fault>,
        /// Update-batch size (parity with the in-process executors).
        batch: usize,
        /// The shard of signed updates to ingest.
        updates: Vec<SignedEdge>,
    },
    /// Worker → parent: the local insertion-only sketch's snapshot.
    ReplySketch {
        /// The worker's local snapshot.
        snapshot: SketchSnapshot,
        /// The encoding it traveled in.
        ship: ShipFormat,
    },
    /// Worker → parent: the local dynamic sketch's snapshot.
    ReplyDynamic {
        /// The worker's local snapshot.
        snapshot: DynamicSnapshot,
        /// The encoding it traveled in.
        ship: ShipFormat,
    },
    /// Liveness/version probe. The parent sends it; a live,
    /// version-compatible worker echoes the same nonce back. An
    /// old-version worker answers with a frame the parent rejects as a
    /// typed [`WireError::UnsupportedVersion`] — never a silent hang.
    Heartbeat {
        /// Opaque echo token chosen by the sender.
        nonce: u64,
    },
    /// Coordinator → worker: open a **chunked** insertion-only shard
    /// stream. Everything a [`Message::JobSketch`] carries except the
    /// edges, which follow in `chunks` bounded [`Message::JobChunk`]
    /// frames — the worker starts ingesting on the first chunk instead
    /// of waiting for the whole shard.
    ChunkStartSketch {
        /// Shard index this stream builds (echoed in every chunk/ack).
        shard: u32,
        /// How many [`Message::JobChunk`] frames follow (may be 0 for an
        /// empty shard).
        chunks: u32,
        /// Sketch parameters for the worker's local sketch.
        params: SketchParams,
        /// Shared hash seed (workers must agree to merge).
        seed: u64,
        /// How the reply snapshot travels back.
        ship: ShipFormat,
        /// Deterministic **worker** fault, executed when the last chunk
        /// has been ingested (network faults never ride in frames).
        fault: Option<Fault>,
        /// Update-batch size (parity with the in-process executors).
        batch: usize,
    },
    /// Coordinator → worker: open a chunked **dynamic** shard stream;
    /// the signed updates follow in [`Message::JobChunk`] frames.
    ChunkStartDynamic {
        /// Shard index this stream builds (echoed in every chunk/ack).
        shard: u32,
        /// How many [`Message::JobChunk`] frames follow.
        chunks: u32,
        /// Dynamic sketch parameters for the worker's local sketch.
        params: DynamicSketchParams,
        /// Shared hash seed (workers must agree to merge).
        seed: u64,
        /// How the reply snapshot travels back.
        ship: ShipFormat,
        /// Deterministic worker fault, executed at stream completion.
        fault: Option<Fault>,
        /// Update-batch size (parity with the in-process executors).
        batch: usize,
    },
    /// Coordinator → worker: one bounded slice of a chunked shard
    /// stream. Carries the shard id, its index in the stream, the total
    /// chunk count, and a payload-level FNV checksum (verified at decode
    /// on top of the frame checksum), so a duplicate, reordered, or torn
    /// chunk is always a typed observation.
    JobChunk {
        /// The shard this chunk belongs to.
        shard: u32,
        /// 0-based position in the stream; the worker ingests chunks
        /// strictly in order and rejects duplicates by this index.
        index: u32,
        /// Total chunks in the stream (repeated per chunk so a worker
        /// can validate consistency without trusting its own state).
        count: u32,
        /// The slice of the shard's payload.
        payload: ChunkPayload,
    },
    /// Worker → coordinator: chunk `index` of `shard` has been
    /// **ingested** (not merely received). The coordinator uses acks for
    /// flow control (bounded chunks in flight) and to observe that
    /// ingest started before the last chunk was sent.
    ChunkAck {
        /// The shard whose chunk was ingested.
        shard: u32,
        /// The ingested chunk's index.
        index: u32,
    },
    /// Parent → worker: exit cleanly.
    Shutdown,
}

/// The payload of one [`Message::JobChunk`]: a slice of an
/// insertion-only shard's edges or of a dynamic shard's signed updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkPayload {
    /// A slice of an insertion-only shard.
    Edges(Vec<Edge>),
    /// A slice of a dynamic shard's signed updates.
    Updates(Vec<SignedEdge>),
}

impl ChunkPayload {
    /// Number of items (edges or updates) in this slice.
    pub fn len(&self) -> usize {
        match self {
            ChunkPayload::Edges(e) => e.len(),
            ChunkPayload::Updates(u) => u.len(),
        }
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn put_fault(w: &mut WireWriter, fault: &Option<Fault>) {
    let (code, arg) = match fault {
        None => (FAULT_NONE, 0),
        Some(Fault::Crash) => (FAULT_CRASH, 0),
        Some(Fault::Hang) => (FAULT_HANG, 0),
        Some(Fault::Delay(ms)) => (FAULT_DELAY, *ms),
        Some(Fault::CorruptReply) => (FAULT_CORRUPT, 0),
        // Network faults are executed by the coordinator's connection
        // wrapper and never ride in a job frame in practice, but the
        // codec stays total so a round-trip can never panic.
        Some(Fault::DropConn) => (FAULT_DROP, 0),
        Some(Fault::Stall(ms)) => (FAULT_STALL, *ms),
        Some(Fault::DupChunk) => (FAULT_DUP, 0),
    };
    w.put_u8(code);
    w.put_varint(arg);
}

fn get_fault(r: &mut WireReader<'_>) -> Result<Option<Fault>, ProtoError> {
    let code = r.get_u8()?;
    let arg = r.get_varint()?;
    Ok(match code {
        FAULT_NONE => None,
        FAULT_CRASH => Some(Fault::Crash),
        FAULT_HANG => Some(Fault::Hang),
        FAULT_DELAY => Some(Fault::Delay(arg)),
        FAULT_CORRUPT => Some(Fault::CorruptReply),
        FAULT_DROP => Some(Fault::DropConn),
        FAULT_STALL => Some(Fault::Stall(arg)),
        FAULT_DUP => Some(Fault::DupChunk),
        _ => return Err(WireError::Malformed("unknown fault code").into()),
    })
}

fn put_ship(w: &mut WireWriter, ship: ShipFormat) {
    // In-memory shipping cannot cross a pipe; the runner maps it to
    // binary before dispatch, so only two codes exist on the wire.
    w.put_u8(match ship {
        ShipFormat::Json => SHIP_JSON,
        _ => SHIP_BINARY,
    });
}

fn get_ship(r: &mut WireReader<'_>) -> Result<ShipFormat, ProtoError> {
    match r.get_u8()? {
        SHIP_BINARY => Ok(ShipFormat::Binary),
        SHIP_JSON => Ok(ShipFormat::Json),
        _ => Err(WireError::Malformed("unknown ship format code").into()),
    }
}

fn put_base_params(w: &mut WireWriter, p: &SketchParams) {
    w.put_varint(p.num_sets as u64);
    w.put_varint(p.k as u64);
    w.put_u64(p.epsilon.to_bits());
    w.put_varint(p.degree_cap as u64);
    w.put_varint(p.edge_budget as u64);
    w.put_varint(p.edge_slack as u64);
    w.put_u8(p.dedup as u8);
}

fn get_base_params(r: &mut WireReader<'_>) -> Result<SketchParams, ProtoError> {
    Ok(SketchParams {
        num_sets: r.get_len()?,
        k: r.get_len()?,
        epsilon: f64::from_bits(r.get_u64()?),
        degree_cap: r.get_len()?,
        edge_budget: r.get_len()?,
        edge_slack: r.get_len()?,
        dedup: match r.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed("dedup flag is not 0 or 1").into()),
        },
    })
}

fn get_u32v(r: &mut WireReader<'_>) -> Result<u32, ProtoError> {
    u32::try_from(r.get_varint()?)
        .map_err(|_| WireError::Malformed("chunk field exceeds u32").into())
}

fn encode_payload(msg: &Message) -> (u8, Vec<u8>) {
    let mut w = WireWriter::new();
    match msg {
        Message::JobSketch {
            params,
            seed,
            ship,
            fault,
            batch,
            edges,
        } => {
            put_base_params(&mut w, params);
            w.put_u64(*seed);
            put_ship(&mut w, *ship);
            put_fault(&mut w, fault);
            w.put_varint(*batch as u64);
            w.put_varint(edges.len() as u64);
            for e in edges {
                w.put_varint(e.set.0 as u64);
                w.put_varint(e.element.0);
            }
            (KIND_JOB_SKETCH, w.into_bytes())
        }
        Message::JobDynamic {
            params,
            seed,
            ship,
            fault,
            batch,
            updates,
        } => {
            put_base_params(&mut w, &params.base);
            w.put_varint(params.levels as u64);
            w.put_varint(params.rows as u64);
            w.put_varint(params.row_len as u64);
            w.put_u64(*seed);
            put_ship(&mut w, *ship);
            put_fault(&mut w, fault);
            w.put_varint(*batch as u64);
            w.put_varint(updates.len() as u64);
            for u in updates {
                w.put_u8(if u.sign() >= 0 { 0 } else { 1 });
                w.put_varint(u.edge.set.0 as u64);
                w.put_varint(u.edge.element.0);
            }
            (KIND_JOB_DYNAMIC, w.into_bytes())
        }
        Message::ReplySketch { snapshot, ship } => {
            put_ship(&mut w, *ship);
            let encoded = match ship {
                ShipFormat::Json => snapshot.to_json().into_bytes(),
                _ => snapshot.encode_binary(),
            };
            w.put_varint(encoded.len() as u64);
            w.put_bytes(&encoded);
            (KIND_REPLY_SKETCH, w.into_bytes())
        }
        Message::ReplyDynamic { snapshot, ship } => {
            put_ship(&mut w, *ship);
            let encoded = match ship {
                ShipFormat::Json => snapshot.to_json().into_bytes(),
                _ => snapshot.encode_binary(),
            };
            w.put_varint(encoded.len() as u64);
            w.put_bytes(&encoded);
            (KIND_REPLY_DYNAMIC, w.into_bytes())
        }
        Message::Heartbeat { nonce } => {
            w.put_u64(*nonce);
            (KIND_HEARTBEAT, w.into_bytes())
        }
        Message::ChunkStartSketch {
            shard,
            chunks,
            params,
            seed,
            ship,
            fault,
            batch,
        } => {
            w.put_varint(*shard as u64);
            w.put_varint(*chunks as u64);
            put_base_params(&mut w, params);
            w.put_u64(*seed);
            put_ship(&mut w, *ship);
            put_fault(&mut w, fault);
            w.put_varint(*batch as u64);
            (KIND_CHUNK_START_SKETCH, w.into_bytes())
        }
        Message::ChunkStartDynamic {
            shard,
            chunks,
            params,
            seed,
            ship,
            fault,
            batch,
        } => {
            w.put_varint(*shard as u64);
            w.put_varint(*chunks as u64);
            put_base_params(&mut w, &params.base);
            w.put_varint(params.levels as u64);
            w.put_varint(params.rows as u64);
            w.put_varint(params.row_len as u64);
            w.put_u64(*seed);
            put_ship(&mut w, *ship);
            put_fault(&mut w, fault);
            w.put_varint(*batch as u64);
            (KIND_CHUNK_START_DYNAMIC, w.into_bytes())
        }
        Message::JobChunk {
            shard,
            index,
            count,
            payload,
        } => {
            w.put_varint(*shard as u64);
            w.put_varint(*index as u64);
            w.put_varint(*count as u64);
            // Serialize the items into their own region so a per-chunk
            // checksum can cover exactly the payload bytes.
            let mut items = WireWriter::new();
            let tag = match payload {
                ChunkPayload::Edges(edges) => {
                    items.put_varint(edges.len() as u64);
                    for e in edges {
                        items.put_varint(e.set.0 as u64);
                        items.put_varint(e.element.0);
                    }
                    CHUNK_EDGES
                }
                ChunkPayload::Updates(updates) => {
                    items.put_varint(updates.len() as u64);
                    for u in updates {
                        items.put_u8(if u.sign() >= 0 { 0 } else { 1 });
                        items.put_varint(u.edge.set.0 as u64);
                        items.put_varint(u.edge.element.0);
                    }
                    CHUNK_UPDATES
                }
            };
            let items = items.into_bytes();
            w.put_u8(tag);
            w.put_u64(checksum64(&items));
            w.put_varint(items.len() as u64);
            w.put_bytes(&items);
            (KIND_JOB_CHUNK, w.into_bytes())
        }
        Message::ChunkAck { shard, index } => {
            w.put_varint(*shard as u64);
            w.put_varint(*index as u64);
            (KIND_CHUNK_ACK, w.into_bytes())
        }
        Message::Shutdown => (KIND_SHUTDOWN, Vec::new()),
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Message, ProtoError> {
    let mut r = WireReader::new(payload);
    let msg = match kind {
        KIND_JOB_SKETCH => {
            let params = get_base_params(&mut r)?;
            let seed = r.get_u64()?;
            let ship = get_ship(&mut r)?;
            let fault = get_fault(&mut r)?;
            let batch = r.get_len()?;
            let n = r.get_len()?;
            if n > r.remaining() {
                return Err(WireError::Malformed("edge count exceeds payload size").into());
            }
            let mut edges = Vec::with_capacity(n);
            for _ in 0..n {
                let set = u32::try_from(r.get_varint()?)
                    .map_err(|_| WireError::Malformed("set id exceeds u32"))?;
                edges.push(Edge::new(set, r.get_varint()?));
            }
            Message::JobSketch {
                params,
                seed,
                ship,
                fault,
                batch,
                edges,
            }
        }
        KIND_JOB_DYNAMIC => {
            let base = get_base_params(&mut r)?;
            let levels = r.get_len()?;
            let rows = r.get_len()?;
            let row_len = r.get_len()?;
            let params = DynamicSketchParams {
                base,
                levels,
                rows,
                row_len,
            };
            let seed = r.get_u64()?;
            let ship = get_ship(&mut r)?;
            let fault = get_fault(&mut r)?;
            let batch = r.get_len()?;
            let n = r.get_len()?;
            if n > r.remaining() {
                return Err(WireError::Malformed("update count exceeds payload size").into());
            }
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                let sign = r.get_u8()?;
                let set = u32::try_from(r.get_varint()?)
                    .map_err(|_| WireError::Malformed("set id exceeds u32"))?;
                let edge = Edge::new(set, r.get_varint()?);
                updates.push(match sign {
                    0 => SignedEdge::insert(edge),
                    1 => SignedEdge::delete(edge),
                    _ => return Err(WireError::Malformed("unknown update sign").into()),
                });
            }
            Message::JobDynamic {
                params,
                seed,
                ship,
                fault,
                batch,
                updates,
            }
        }
        KIND_REPLY_SKETCH => {
            let ship = get_ship(&mut r)?;
            let len = r.get_len()?;
            let encoded = r.get_bytes(len)?;
            let snapshot = match ship {
                ShipFormat::Json => {
                    let text = std::str::from_utf8(encoded)
                        .map_err(|_| WireError::Malformed("reply JSON is not UTF-8"))?;
                    SketchSnapshot::from_json(text)
                        .map_err(|_| WireError::Malformed("reply JSON does not parse"))?
                }
                _ => SketchSnapshot::decode_binary(encoded)?,
            };
            Message::ReplySketch { snapshot, ship }
        }
        KIND_REPLY_DYNAMIC => {
            let ship = get_ship(&mut r)?;
            let len = r.get_len()?;
            let encoded = r.get_bytes(len)?;
            let snapshot = match ship {
                ShipFormat::Json => {
                    let text = std::str::from_utf8(encoded)
                        .map_err(|_| WireError::Malformed("reply JSON is not UTF-8"))?;
                    DynamicSnapshot::from_json(text)
                        .map_err(|_| WireError::Malformed("reply JSON does not parse"))?
                }
                _ => DynamicSnapshot::decode_binary(encoded)?,
            };
            Message::ReplyDynamic { snapshot, ship }
        }
        KIND_HEARTBEAT => Message::Heartbeat {
            nonce: r.get_u64()?,
        },
        KIND_CHUNK_START_SKETCH => {
            let shard = get_u32v(&mut r)?;
            let chunks = get_u32v(&mut r)?;
            let params = get_base_params(&mut r)?;
            let seed = r.get_u64()?;
            let ship = get_ship(&mut r)?;
            let fault = get_fault(&mut r)?;
            let batch = r.get_len()?;
            Message::ChunkStartSketch {
                shard,
                chunks,
                params,
                seed,
                ship,
                fault,
                batch,
            }
        }
        KIND_CHUNK_START_DYNAMIC => {
            let shard = get_u32v(&mut r)?;
            let chunks = get_u32v(&mut r)?;
            let base = get_base_params(&mut r)?;
            let params = DynamicSketchParams {
                base,
                levels: r.get_len()?,
                rows: r.get_len()?,
                row_len: r.get_len()?,
            };
            let seed = r.get_u64()?;
            let ship = get_ship(&mut r)?;
            let fault = get_fault(&mut r)?;
            let batch = r.get_len()?;
            Message::ChunkStartDynamic {
                shard,
                chunks,
                params,
                seed,
                ship,
                fault,
                batch,
            }
        }
        KIND_JOB_CHUNK => {
            let shard = get_u32v(&mut r)?;
            let index = get_u32v(&mut r)?;
            let count = get_u32v(&mut r)?;
            let tag = r.get_u8()?;
            let sum = r.get_u64()?;
            let len = r.get_len()?;
            let items = r.get_bytes(len)?;
            if checksum64(items) != sum {
                return Err(WireError::ChecksumMismatch.into());
            }
            let mut ir = WireReader::new(items);
            let n = ir.get_len()?;
            if n > ir.remaining() {
                return Err(WireError::Malformed("chunk item count exceeds payload size").into());
            }
            let payload = match tag {
                CHUNK_EDGES => {
                    let mut edges = Vec::with_capacity(n);
                    for _ in 0..n {
                        let set = u32::try_from(ir.get_varint()?)
                            .map_err(|_| WireError::Malformed("set id exceeds u32"))?;
                        edges.push(Edge::new(set, ir.get_varint()?));
                    }
                    ChunkPayload::Edges(edges)
                }
                CHUNK_UPDATES => {
                    let mut updates = Vec::with_capacity(n);
                    for _ in 0..n {
                        let sign = ir.get_u8()?;
                        let set = u32::try_from(ir.get_varint()?)
                            .map_err(|_| WireError::Malformed("set id exceeds u32"))?;
                        let edge = Edge::new(set, ir.get_varint()?);
                        updates.push(match sign {
                            0 => SignedEdge::insert(edge),
                            1 => SignedEdge::delete(edge),
                            _ => return Err(WireError::Malformed("unknown update sign").into()),
                        });
                    }
                    ChunkPayload::Updates(updates)
                }
                _ => return Err(WireError::Malformed("unknown chunk payload tag").into()),
            };
            if !ir.is_done() {
                return Err(WireError::Malformed("leftover chunk payload bytes").into());
            }
            Message::JobChunk {
                shard,
                index,
                count,
                payload,
            }
        }
        KIND_CHUNK_ACK => Message::ChunkAck {
            shard: get_u32v(&mut r)?,
            index: get_u32v(&mut r)?,
        },
        KIND_SHUTDOWN => Message::Shutdown,
        other => return Err(WireError::UnknownKind { found: other }.into()),
    };
    if !r.is_done() {
        return Err(WireError::Malformed("leftover payload bytes").into());
    }
    Ok(msg)
}

/// Write one framed message, returning the total bytes put on the pipe.
pub fn write_message(out: &mut impl Write, msg: &Message) -> Result<u64, ProtoError> {
    let (kind, payload) = encode_payload(msg);
    let mut w = WireWriter::new();
    w.put_bytes(&PROTO_MAGIC);
    w.put_u16(PROTO_VERSION);
    w.put_u8(kind);
    w.put_u8(0);
    w.put_u64(payload.len() as u64);
    w.put_bytes(&payload);
    let frame_body = w.into_bytes();
    let sum = checksum64(&frame_body);
    out.write_all(&frame_body)?;
    out.write_all(&sum.to_le_bytes())?;
    out.flush()?;
    Ok(frame_body.len() as u64 + 8)
}

/// Write `msg` as a frame with exactly one bit flipped in its payload
/// (or, for an empty payload, in its checksum), deterministically
/// positioned by `seed` — the executable [`Fault::CorruptReply`]. The
/// checksum is computed over the *pristine* body and the flip lands in
/// the payload region (never the header), so the receiver is guaranteed
/// a typed [`WireError::ChecksumMismatch`] — never silently merged
/// garbage.
pub fn write_corrupted_message(
    out: &mut impl Write,
    msg: &Message,
    seed: u64,
) -> Result<u64, ProtoError> {
    let (kind, payload) = encode_payload(msg);
    let mut w = WireWriter::new();
    w.put_bytes(&PROTO_MAGIC);
    w.put_u16(PROTO_VERSION);
    w.put_u8(kind);
    w.put_u8(0);
    w.put_u64(payload.len() as u64);
    w.put_bytes(&payload);
    let mut frame_body = w.into_bytes();
    let mut sum = checksum64(&frame_body).to_le_bytes();
    if payload.is_empty() {
        sum[(seed % 8) as usize] ^= 1 << ((seed / 8) % 8);
    } else {
        let at = 16 + (seed as usize % payload.len());
        frame_body[at] ^= 1 << ((seed / 7) % 8);
    }
    out.write_all(&frame_body)?;
    out.write_all(&sum)?;
    out.flush()?;
    Ok(frame_body.len() as u64 + 8)
}

/// Read one framed message, returning it with the total bytes consumed.
///
/// Returns [`ProtoError::Eof`] when the pipe closes cleanly *between*
/// frames (a finished worker); a pipe that dies mid-frame is an
/// [`ProtoError::Io`], and a frame that fails validation (magic,
/// version, checksum, payload structure) is a [`ProtoError::Wire`].
pub fn read_message(input: &mut impl Read) -> Result<(Message, u64), ProtoError> {
    let mut header = [0u8; 16];
    // Distinguish clean EOF (no bytes at all) from a mid-frame cut.
    let mut got = 0usize;
    while got < header.len() {
        match input.read(&mut header[got..])? {
            0 if got == 0 => return Err(ProtoError::Eof),
            0 => {
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "pipe closed mid-frame",
                )))
            }
            n => got += n,
        }
    }
    if header[0..4] != PROTO_MAGIC {
        return Err(WireError::BadMagic.into());
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != PROTO_VERSION {
        return Err(WireError::UnsupportedVersion { found: version }.into());
    }
    let kind = header[6];
    let payload_len = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let payload_len = usize::try_from(payload_len)
        .map_err(|_| WireError::Malformed("payload length exceeds the address space"))?;
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Malformed("frame payload exceeds the size cap").into());
    }
    let mut payload = vec![0u8; payload_len];
    input.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    input.read_exact(&mut sum)?;
    let mut body = Vec::with_capacity(16 + payload_len);
    body.extend_from_slice(&header);
    body.extend_from_slice(&payload);
    if checksum64(&body) != u64::from_le_bytes(sum) {
        return Err(WireError::ChecksumMismatch.into());
    }
    let msg = decode_payload(kind, &payload)?;
    Ok((msg, 16 + payload_len as u64 + 8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_sketch::ThresholdSketch;
    use coverage_stream::VecStream;

    fn roundtrip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        let written = write_message(&mut buf, msg).unwrap();
        assert_eq!(written as usize, buf.len());
        let mut cursor = &buf[..];
        let (back, read) = read_message(&mut cursor).unwrap();
        assert_eq!(read, written);
        assert!(cursor.is_empty());
        back
    }

    #[test]
    fn job_sketch_roundtrips() {
        let msg = Message::JobSketch {
            params: SketchParams::with_budget(6, 2, 0.5, 100),
            seed: 42,
            ship: ShipFormat::Binary,
            fault: None,
            batch: 4096,
            edges: vec![Edge::new(0u32, 7u64), Edge::new(5u32, u64::MAX)],
        };
        match roundtrip(&msg) {
            Message::JobSketch {
                params,
                seed,
                ship,
                fault,
                batch,
                edges,
            } => {
                assert_eq!(params, SketchParams::with_budget(6, 2, 0.5, 100));
                assert_eq!(seed, 42);
                assert_eq!(ship, ShipFormat::Binary);
                assert_eq!(fault, None);
                assert_eq!(batch, 4096);
                assert_eq!(
                    edges,
                    vec![Edge::new(0u32, 7u64), Edge::new(5u32, u64::MAX)]
                );
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn every_fault_kind_roundtrips() {
        for fault in [
            Some(Fault::Crash),
            Some(Fault::Hang),
            Some(Fault::Delay(1234)),
            Some(Fault::CorruptReply),
            None,
        ] {
            let msg = Message::JobSketch {
                params: SketchParams::with_budget(4, 1, 0.5, 40),
                seed: 3,
                ship: ShipFormat::Binary,
                fault,
                batch: 16,
                edges: vec![Edge::new(1u32, 2u64)],
            };
            match roundtrip(&msg) {
                Message::JobSketch { fault: back, .. } => assert_eq!(back, fault),
                other => panic!("wrong message: {other:?}"),
            }
        }
    }

    #[test]
    fn job_dynamic_roundtrips_signs() {
        let params = DynamicSketchParams::new(SketchParams::with_budget(3, 1, 0.5, 50));
        let msg = Message::JobDynamic {
            params,
            seed: 7,
            ship: ShipFormat::Json,
            fault: Some(Fault::Crash),
            batch: 512,
            updates: vec![
                SignedEdge::insert(Edge::new(1u32, 10u64)),
                SignedEdge::delete(Edge::new(1u32, 10u64)),
            ],
        };
        match roundtrip(&msg) {
            Message::JobDynamic {
                params: p,
                fault,
                updates,
                ship,
                ..
            } => {
                assert_eq!(p, params);
                assert_eq!(fault, Some(Fault::Crash));
                assert_eq!(ship, ShipFormat::Json);
                assert_eq!(updates.len(), 2);
                assert!(updates[0].sign() > 0);
                assert!(updates[1].sign() < 0);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn replies_roundtrip_in_both_encodings() {
        let params = SketchParams::with_budget(4, 2, 0.5, 80);
        let edges: Vec<Edge> = (0..200u64).map(|e| Edge::new((e % 4) as u32, e)).collect();
        let sketch = ThresholdSketch::from_stream(params, 11, &VecStream::new(4, edges));
        let snapshot = SketchSnapshot::of(&sketch);
        for ship in [ShipFormat::Binary, ShipFormat::Json] {
            let msg = Message::ReplySketch {
                snapshot: snapshot.clone(),
                ship,
            };
            match roundtrip(&msg) {
                Message::ReplySketch { snapshot: back, .. } => assert_eq!(back, snapshot),
                other => panic!("wrong message: {other:?}"),
            }
        }
    }

    #[test]
    fn shutdown_roundtrips() {
        assert!(matches!(roundtrip(&Message::Shutdown), Message::Shutdown));
    }

    #[test]
    fn heartbeat_roundtrips_its_nonce() {
        match roundtrip(&Message::Heartbeat { nonce: 0xDEAD_BEEF }) {
            Message::Heartbeat { nonce } => assert_eq!(nonce, 0xDEAD_BEEF),
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn chunk_frames_roundtrip() {
        let start = Message::ChunkStartSketch {
            shard: 3,
            chunks: 7,
            params: SketchParams::with_budget(6, 2, 0.5, 100),
            seed: 42,
            ship: ShipFormat::Binary,
            fault: Some(Fault::Delay(5)),
            batch: 4096,
        };
        match roundtrip(&start) {
            Message::ChunkStartSketch {
                shard,
                chunks,
                params,
                seed,
                fault,
                ..
            } => {
                assert_eq!((shard, chunks, seed), (3, 7, 42));
                assert_eq!(params, SketchParams::with_budget(6, 2, 0.5, 100));
                assert_eq!(fault, Some(Fault::Delay(5)));
            }
            other => panic!("wrong message: {other:?}"),
        }
        let dstart = Message::ChunkStartDynamic {
            shard: 1,
            chunks: 2,
            params: DynamicSketchParams::new(SketchParams::with_budget(3, 1, 0.5, 50)),
            seed: 9,
            ship: ShipFormat::Json,
            fault: None,
            batch: 64,
        };
        match roundtrip(&dstart) {
            Message::ChunkStartDynamic { shard, chunks, .. } => {
                assert_eq!((shard, chunks), (1, 2));
            }
            other => panic!("wrong message: {other:?}"),
        }
        let chunk = Message::JobChunk {
            shard: 3,
            index: 2,
            count: 7,
            payload: ChunkPayload::Edges(vec![Edge::new(0u32, 7u64), Edge::new(5u32, u64::MAX)]),
        };
        match roundtrip(&chunk) {
            Message::JobChunk {
                shard,
                index,
                count,
                payload,
            } => {
                assert_eq!((shard, index, count), (3, 2, 7));
                assert_eq!(
                    payload,
                    ChunkPayload::Edges(vec![Edge::new(0u32, 7u64), Edge::new(5u32, u64::MAX)])
                );
            }
            other => panic!("wrong message: {other:?}"),
        }
        let dchunk = Message::JobChunk {
            shard: 1,
            index: 0,
            count: 2,
            payload: ChunkPayload::Updates(vec![
                SignedEdge::insert(Edge::new(1u32, 10u64)),
                SignedEdge::delete(Edge::new(1u32, 10u64)),
            ]),
        };
        match roundtrip(&dchunk) {
            Message::JobChunk {
                payload: ChunkPayload::Updates(u),
                ..
            } => {
                assert!(u[0].sign() > 0 && u[1].sign() < 0);
            }
            other => panic!("wrong message: {other:?}"),
        }
        match roundtrip(&Message::ChunkAck { shard: 5, index: 4 }) {
            Message::ChunkAck { shard, index } => assert_eq!((shard, index), (5, 4)),
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn chunk_payload_checksum_catches_item_corruption() {
        // Corrupt an item byte but fix up the frame checksum, simulating
        // corruption that slipped past the outer envelope: the inner
        // per-chunk checksum must still catch it.
        let msg = Message::JobChunk {
            shard: 0,
            index: 0,
            count: 1,
            payload: ChunkPayload::Edges((0..50u64).map(|e| Edge::new(1u32, e)).collect()),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let body_len = buf.len() - 8;
        buf[body_len - 1] ^= 0x40;
        let sum = checksum64(&buf[..body_len]).to_le_bytes();
        buf[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            read_message(&mut &buf[..]),
            Err(ProtoError::Wire(WireError::ChecksumMismatch))
        ));
    }

    /// A reader that returns at most one byte per `read` call — the
    /// worst-case TCP segmentation, which never respects frame
    /// boundaries the way pipe writes mostly do.
    struct OneByteReader<'a>(&'a [u8]);

    impl std::io::Read for OneByteReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn every_message_decodes_from_a_one_byte_at_a_time_reader() {
        let params = SketchParams::with_budget(4, 2, 0.5, 80);
        let edges: Vec<Edge> = (0..200u64).map(|e| Edge::new((e % 4) as u32, e)).collect();
        let sketch = ThresholdSketch::from_stream(params, 11, &VecStream::new(4, edges.clone()));
        let messages = vec![
            Message::JobSketch {
                params,
                seed: 42,
                ship: ShipFormat::Binary,
                fault: Some(Fault::Delay(3)),
                batch: 64,
                edges: edges.clone(),
            },
            Message::JobDynamic {
                params: DynamicSketchParams::new(params),
                seed: 7,
                ship: ShipFormat::Json,
                fault: None,
                batch: 32,
                updates: vec![SignedEdge::insert(Edge::new(1u32, 2u64))],
            },
            Message::ReplySketch {
                snapshot: SketchSnapshot::of(&sketch),
                ship: ShipFormat::Binary,
            },
            Message::Heartbeat { nonce: u64::MAX },
            Message::ChunkStartSketch {
                shard: 2,
                chunks: 3,
                params,
                seed: 1,
                ship: ShipFormat::Binary,
                fault: None,
                batch: 16,
            },
            Message::JobChunk {
                shard: 2,
                index: 1,
                count: 3,
                payload: ChunkPayload::Edges(edges),
            },
            Message::ChunkAck { shard: 2, index: 1 },
            Message::Shutdown,
        ];
        // All frames concatenated through the 1-byte reader decode in
        // order and byte-for-byte.
        let mut buf = Vec::new();
        for m in &messages {
            write_message(&mut buf, m).unwrap();
        }
        let mut reader = OneByteReader(&buf);
        for m in &messages {
            let (back, _) = read_message(&mut reader).unwrap();
            let mut a = Vec::new();
            let mut b = Vec::new();
            write_message(&mut a, m).unwrap();
            write_message(&mut b, &back).unwrap();
            assert_eq!(a, b, "short-read decode must be byte-identical");
        }
        assert!(matches!(read_message(&mut reader), Err(ProtoError::Eof)));
    }

    #[test]
    fn old_version_frames_are_typed_not_fatal() {
        // Hand-craft a version-1 frame: take a valid frame, rewrite the
        // version field, and re-checksum — exactly the bytes an
        // old-version worker would produce.
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Shutdown).unwrap();
        let body_len = buf.len() - 8;
        buf[4] = 1;
        buf[5] = 0;
        let sum = checksum64(&buf[..body_len]).to_le_bytes();
        buf[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            read_message(&mut &buf[..]),
            Err(ProtoError::Wire(WireError::UnsupportedVersion { found: 1 }))
        ));
    }

    #[test]
    fn corrupted_writer_output_is_a_typed_checksum_error() {
        let msg = Message::JobSketch {
            params: SketchParams::with_budget(4, 1, 0.5, 40),
            seed: 5,
            ship: ShipFormat::Binary,
            fault: None,
            batch: 16,
            edges: vec![Edge::new(0u32, 1u64), Edge::new(2u32, 3u64)],
        };
        for seed in 0u64..32 {
            let mut buf = Vec::new();
            let written = write_corrupted_message(&mut buf, &msg, seed).unwrap();
            assert_eq!(written as usize, buf.len());
            match read_message(&mut &buf[..]) {
                Err(ProtoError::Wire(_)) => {}
                other => {
                    panic!("seed {seed}: corrupt frame must be a typed wire error, got {other:?}")
                }
            }
        }
        // Empty payload: the flip lands in the checksum trailer.
        let mut buf = Vec::new();
        write_corrupted_message(&mut buf, &Message::Shutdown, 11).unwrap();
        assert!(matches!(
            read_message(&mut &buf[..]),
            Err(ProtoError::Wire(WireError::ChecksumMismatch))
        ));
    }

    #[test]
    fn oversized_payload_is_rejected_before_allocation() {
        // A 16-byte header claiming a payload beyond the cap, with
        // nothing behind it: if the reader tried to allocate/read it,
        // this would be an Io error — the cap must fire first.
        let mut header = Vec::new();
        header.extend_from_slice(&PROTO_MAGIC);
        header.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        header.push(KIND_SHUTDOWN);
        header.push(0);
        header.extend_from_slice(&((MAX_FRAME_PAYLOAD as u64 + 1).to_le_bytes()));
        assert!(matches!(
            read_message(&mut &header[..]),
            Err(ProtoError::Wire(WireError::Malformed(_)))
        ));
    }

    #[test]
    fn empty_pipe_is_clean_eof() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_message(&mut empty), Err(ProtoError::Eof)));
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Shutdown).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            read_message(&mut &bad[..]),
            Err(ProtoError::Wire(WireError::BadMagic))
        ));
        // Version bump.
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(matches!(
            read_message(&mut &bad[..]),
            Err(ProtoError::Wire(WireError::UnsupportedVersion { found: 9 }))
        ));
        // Payload-area corruption → checksum. (Shutdown has no payload;
        // flip a checksum byte instead.)
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            read_message(&mut &bad[..]),
            Err(ProtoError::Wire(WireError::ChecksumMismatch))
        ));
        // Mid-frame cut → Io, not Eof.
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(
            read_message(&mut &cut[..]),
            Err(ProtoError::Io(_))
        ));
    }
}
