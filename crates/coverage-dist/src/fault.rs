//! Deterministic fault injection for the distributed runtime.
//!
//! The paper's sketches are mergeable and every shard job is
//! self-contained (params + seed + shard), so *any* fault is recoverable
//! by rebuilding or re-dispatching the affected shard — retry is cheap
//! by construction. This module supplies the other half of that story: a
//! **seeded, reproducible schedule of faults** ([`FaultPlan`]) that the
//! executors can inject on purpose, so the recovery paths are exercised
//! deterministically instead of waiting for real infrastructure to
//! misbehave.
//!
//! A plan maps shard indices to [`Fault`]s. The
//! [`ProcessRunner`](crate::ProcessRunner) consumes each shard's fault
//! on that shard's **first** dispatch (exactly once per run), threads it
//! to the worker inside the job frame, and the worker executes it —
//! crash before replying, hang forever, delay the reply, or corrupt the
//! reply frame. Every one of these is observed by the parent through a
//! different detector (EOF, deadline reaper, nothing, checksum) and
//! recovered through the same re-shard path, which is what the chaos
//! suite (`tests/chaos.rs`) locks down.

use std::fmt;

/// One injectable fault. The first four are **worker faults**, executed
/// by the worker that receives them inside its job frame; the last three
/// are **network faults**, executed by the coordinator's fault-aware
/// connection wrapper on the socket transport
/// ([`SocketRunner`](crate::SocketRunner)) — the pipe transport has no
/// network to break, so [`ProcessRunner`](crate::ProcessRunner) skips
/// them (see [`Fault::is_network`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Exit without replying (the parent sees EOF — a crashed worker).
    Crash,
    /// Stall forever without replying (detected only by the parent's
    /// per-job deadline reaper, never by EOF).
    Hang,
    /// Sleep this many milliseconds, then reply normally (a slow
    /// worker; must *not* trigger recovery when under the deadline).
    Delay(u64),
    /// Reply with a bit-flipped frame (detected by the frame checksum as
    /// a typed wire error; the worker is dropped and the shard
    /// re-dispatched).
    CorruptReply,
    /// Network fault: sever the connection mid-chunk-stream (the worker
    /// sees a mid-frame cut, the coordinator sees the connection die and
    /// requeues the whole shard). Spelled `drop@N`.
    DropConn,
    /// Network fault: stop reading and writing for this many
    /// milliseconds without closing the connection — the half-open link
    /// that only missed heartbeats can detect, exercising the
    /// live→suspect(→dead) path. Spelled `stall<MS>@N`.
    Stall(u64),
    /// Network fault: deliver one chunk frame twice; the worker's chunk
    /// index must reject the duplicate or the shard's sketch is wrong.
    /// Spelled `dup@N`.
    DupChunk,
}

impl Fault {
    /// Whether this is a network fault, executed by the coordinator's
    /// connection wrapper rather than shipped to the worker. The pipe
    /// transport ([`ProcessRunner`](crate::ProcessRunner)) ignores
    /// network faults: a pipe cannot stall half-open or duplicate a
    /// frame on its own.
    pub fn is_network(&self) -> bool {
        matches!(self, Fault::DropConn | Fault::Stall(_) | Fault::DupChunk)
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Crash => write!(f, "crash"),
            Fault::Hang => write!(f, "hang"),
            Fault::Delay(ms) => write!(f, "delay{ms}"),
            Fault::CorruptReply => write!(f, "corrupt"),
            Fault::DropConn => write!(f, "drop"),
            Fault::Stall(ms) => write!(f, "stall{ms}"),
            Fault::DupChunk => write!(f, "dup"),
        }
    }
}

/// A typed parse failure from [`FaultPlan::parse`] — every way a CLI
/// spec can be malformed gets its own variant, so callers (and the
/// property tests) can assert on *which* rule was violated instead of
/// string-matching an error message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultParseError {
    /// The spec is not of the form `SEED:SPEC`.
    MissingColon(String),
    /// The seed before the colon is not a `u64`.
    BadSeed(String),
    /// A `rand<PCT>` percentage is not an integer in `0..=100`.
    BadRandomPct(String),
    /// A fault item is missing its `@SHARD` suffix.
    MissingShard(String),
    /// A fault item's shard index is not a number.
    BadShard(String),
    /// A `delay<MS>` or `stall<MS>` argument is not a number.
    BadMillis(String),
    /// The fault kind is not one of the known spellings.
    UnknownKind(String),
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultParseError::MissingColon(s) => {
                write!(f, "fault plan `{s}` is not of the form SEED:SPEC")
            }
            FaultParseError::BadSeed(s) => write!(f, "fault plan seed `{s}` is not a u64"),
            FaultParseError::BadRandomPct(s) => {
                write!(f, "random fault percentage `{s}` is not 0-100")
            }
            FaultParseError::MissingShard(s) => {
                write!(f, "fault `{s}` is missing its `@SHARD` suffix")
            }
            FaultParseError::BadShard(s) => write!(f, "fault shard index `{s}` is not a number"),
            FaultParseError::BadMillis(s) => {
                write!(
                    f,
                    "fault `{s}` needs a millisecond count (delay<MS>/stall<MS>)"
                )
            }
            FaultParseError::UnknownKind(s) => write!(f, "unknown fault kind `{s}`"),
        }
    }
}

impl std::error::Error for FaultParseError {}

/// The tiny deterministic PRNG behind every random fault schedule
/// (SplitMix64). Public so transports and tests can derive reproducible
/// per-event decisions from the same stream a plan uses.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next value reduced below `n` (`n ≥ 1`; modulo bias is
    /// irrelevant at fault-schedule granularity).
    pub fn next_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Largest delay a plan will inject, in milliseconds — keeps random
/// schedules inside the chaos suite's bounded-wall-clock contract.
pub const MAX_DELAY_MS: u64 = 10_000;

/// A seeded, deterministic schedule of injectable faults, keyed by shard
/// index. Explicit entries ([`with_fault`](Self::with_fault)) override
/// the random layer ([`with_random_pct`](Self::with_random_pct)); the
/// materialized schedule is a pure function of `(seed, entries, pct,
/// n_shards)`, so a failing chaos seed replays exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    entries: Vec<(usize, Fault)>,
    random_pct: u8,
}

impl FaultPlan {
    /// The empty plan: no faults, ever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan carrying `seed` for its random layer.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            entries: Vec::new(),
            random_pct: 0,
        }
    }

    /// Add an explicit fault for `shard` (consumed on that shard's first
    /// dispatch). Delays and stalls are clamped to [`MAX_DELAY_MS`]. The
    /// last entry for a shard wins.
    pub fn with_fault(mut self, shard: usize, fault: Fault) -> Self {
        let fault = match fault {
            Fault::Delay(ms) => Fault::Delay(ms.min(MAX_DELAY_MS)),
            Fault::Stall(ms) => Fault::Stall(ms.min(MAX_DELAY_MS)),
            f => f,
        };
        self.entries.push((shard, fault));
        self
    }

    /// Give every shard a `pct`-percent chance (deterministic in the
    /// seed) of drawing a random fault: crash, hang, a short delay, or a
    /// corrupt reply, uniformly.
    pub fn with_random_pct(mut self, pct: u8) -> Self {
        self.random_pct = pct.min(100);
        self
    }

    /// The seed of the random layer.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.random_pct == 0
    }

    /// Materialize the per-shard schedule for a run of `n_shards`: the
    /// random layer first, then explicit entries on top (entries for
    /// out-of-range shards are ignored). Deterministic.
    pub fn schedule(&self, n_shards: usize) -> Vec<Option<Fault>> {
        let mut plan: Vec<Option<Fault>> = vec![None; n_shards];
        if self.random_pct > 0 {
            let mut rng = SplitMix64::new(self.seed);
            for slot in plan.iter_mut() {
                // Two draws per shard whether or not the first hits, so
                // a shard's outcome depends only on its index and the
                // seed — not on earlier shards' rolls.
                let roll = rng.next_below(100);
                let pick = rng.next_u64();
                if roll < self.random_pct as u64 {
                    *slot = Some(match pick % 4 {
                        0 => Fault::Crash,
                        1 => Fault::Hang,
                        2 => Fault::Delay(1 + (pick >> 2) % 40),
                        _ => Fault::CorruptReply,
                    });
                }
            }
        }
        for &(shard, fault) in &self.entries {
            if shard < n_shards {
                plan[shard] = Some(fault);
            }
        }
        plan
    }

    /// Parse the CLI spelling `SEED:SPEC`, where `SPEC` is a comma list
    /// of `crash@N`, `hang@N`, `delay<MS>@N`, `corrupt@N`, the network
    /// kinds `drop@N`, `stall<MS>@N`, `dup@N`, and `rand<PCT>` (e.g.
    /// `7:crash@0,drop@1,stall500@2,rand10`). An empty spec after the
    /// colon is a valid no-fault plan; every malformed spec is a typed
    /// [`FaultParseError`].
    pub fn parse(s: &str) -> Result<FaultPlan, FaultParseError> {
        let (seed_part, spec) = s
            .split_once(':')
            .ok_or_else(|| FaultParseError::MissingColon(s.to_string()))?;
        let seed: u64 = seed_part
            .trim()
            .parse()
            .map_err(|_| FaultParseError::BadSeed(seed_part.to_string()))?;
        let mut plan = FaultPlan::new(seed);
        for item in spec.split(',').map(str::trim).filter(|i| !i.is_empty()) {
            if let Some(pct) = item.strip_prefix("rand") {
                let pct: u8 = pct
                    .parse()
                    .map_err(|_| FaultParseError::BadRandomPct(item.to_string()))?;
                if pct > 100 {
                    return Err(FaultParseError::BadRandomPct(item.to_string()));
                }
                plan = plan.with_random_pct(pct);
                continue;
            }
            let (what, shard) = item
                .split_once('@')
                .ok_or_else(|| FaultParseError::MissingShard(item.to_string()))?;
            let shard: usize = shard
                .parse()
                .map_err(|_| FaultParseError::BadShard(shard.to_string()))?;
            let fault = match what {
                "crash" => Fault::Crash,
                "hang" => Fault::Hang,
                "corrupt" => Fault::CorruptReply,
                "drop" => Fault::DropConn,
                "dup" => Fault::DupChunk,
                other => {
                    let (kind, ms) = if let Some(ms) = other.strip_prefix("delay") {
                        (Fault::Delay as fn(u64) -> Fault, ms)
                    } else if let Some(ms) = other.strip_prefix("stall") {
                        (Fault::Stall as fn(u64) -> Fault, ms)
                    } else {
                        return Err(FaultParseError::UnknownKind(other.to_string()));
                    };
                    kind(
                        ms.parse::<u64>()
                            .map_err(|_| FaultParseError::BadMillis(other.to_string()))?,
                    )
                }
            };
            plan = plan.with_fault(shard, fault);
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.seed)?;
        let mut first = true;
        for (shard, fault) in &self.entries {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{fault}@{shard}")?;
            first = false;
        }
        if self.random_pct > 0 {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "rand{}", self.random_pct)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::new(42).with_random_pct(35);
        assert_eq!(plan.schedule(16), plan.schedule(16));
        // A different seed gives a different schedule (with 16 shards at
        // 35% the chance of a collision across all slots is negligible).
        assert_ne!(
            plan.schedule(16),
            FaultPlan::new(43).with_random_pct(35).schedule(16)
        );
    }

    #[test]
    fn shard_outcome_does_not_depend_on_shard_count() {
        let plan = FaultPlan::new(7).with_random_pct(50);
        let small = plan.schedule(4);
        let large = plan.schedule(12);
        assert_eq!(&large[..4], &small[..]);
    }

    #[test]
    fn explicit_entries_override_the_random_layer() {
        let plan = FaultPlan::new(3)
            .with_random_pct(100)
            .with_fault(2, Fault::Delay(5));
        let sched = plan.schedule(4);
        assert_eq!(sched[2], Some(Fault::Delay(5)));
        for slot in &sched {
            assert!(slot.is_some(), "100% random layer must fault every shard");
        }
    }

    #[test]
    fn out_of_range_entries_are_ignored() {
        let plan = FaultPlan::new(0).with_fault(10, Fault::Crash);
        assert!(plan.schedule(4).iter().all(|s| s.is_none()));
    }

    #[test]
    fn parse_roundtrips_the_display_spelling() {
        let plan = FaultPlan::new(9)
            .with_fault(0, Fault::Crash)
            .with_fault(3, Fault::Delay(40))
            .with_fault(1, Fault::Hang)
            .with_fault(2, Fault::CorruptReply)
            .with_random_pct(10);
        let spec = plan.to_string();
        assert_eq!(spec, "9:crash@0,delay40@3,hang@1,corrupt@2,rand10");
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
    }

    #[test]
    fn network_fault_spellings_roundtrip() {
        let plan = FaultPlan::new(4)
            .with_fault(0, Fault::DropConn)
            .with_fault(1, Fault::Stall(500))
            .with_fault(2, Fault::DupChunk);
        let spec = plan.to_string();
        assert_eq!(spec, "4:drop@0,stall500@1,dup@2");
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
        for f in [Fault::DropConn, Fault::Stall(1), Fault::DupChunk] {
            assert!(f.is_network(), "{f} is a network fault");
        }
        for f in [
            Fault::Crash,
            Fault::Hang,
            Fault::Delay(1),
            Fault::CorruptReply,
        ] {
            assert!(!f.is_network(), "{f} is a worker fault");
        }
    }

    #[test]
    fn rand_boundary_percentages_parse_and_roundtrip() {
        // rand0 is a valid no-op random layer; its Display omits the
        // clause, and re-parsing the display reproduces the plan.
        let zero = FaultPlan::parse("3:rand0").unwrap();
        assert!(zero.is_empty());
        assert_eq!(FaultPlan::parse(&zero.to_string()).unwrap(), zero);
        // rand100 faults every shard.
        let full = FaultPlan::parse("3:rand100").unwrap();
        assert!(full.schedule(16).iter().all(|s| s.is_some()));
        assert_eq!(FaultPlan::parse(&full.to_string()).unwrap(), full);
        // Above the boundary is a typed error, not a silent clamp.
        assert_eq!(
            FaultPlan::parse("3:rand101"),
            Err(FaultParseError::BadRandomPct("rand101".to_string()))
        );
    }

    #[test]
    fn parse_rejects_malformed_specs_with_typed_errors() {
        use FaultParseError as E;
        for (bad, want) in [
            ("nocolon", E::MissingColon("nocolon".to_string())),
            ("x:crash@0", E::BadSeed("x".to_string())),
            ("1:crash", E::MissingShard("crash".to_string())),
            ("1:crash@x", E::BadShard("x".to_string())),
            ("1:frobnicate@0", E::UnknownKind("frobnicate".to_string())),
            ("1:delayxx@0", E::BadMillis("delayxx".to_string())),
            ("1:stall@0", E::BadMillis("stall".to_string())),
            ("1:randmany", E::BadRandomPct("randmany".to_string())),
        ] {
            assert_eq!(FaultPlan::parse(bad), Err(want), "{bad}");
        }
        let empty = FaultPlan::parse("5:").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.seed(), 5);
    }

    #[test]
    fn delays_and_stalls_are_clamped() {
        let plan = FaultPlan::new(0).with_fault(0, Fault::Delay(u64::MAX));
        assert_eq!(plan.schedule(1)[0], Some(Fault::Delay(MAX_DELAY_MS)));
        let plan = FaultPlan::new(0).with_fault(0, Fault::Stall(u64::MAX));
        assert_eq!(plan.schedule(1)[0], Some(Fault::Stall(MAX_DELAY_MS)));
    }

    #[test]
    fn splitmix_streams_differ_by_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
        let mut r = SplitMix64::new(1);
        let again: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(a, again);
    }
}
