//! The worker half of the subprocess executor.
//!
//! A worker is the CLI binary re-invoked in its hidden `worker` mode: it
//! reads framed jobs from stdin ([`proto`](crate::proto)), builds the
//! requested local sketch over its shard, and writes the snapshot back
//! on stdout — one reply per job, strictly in order, so the parent can
//! run a lock-step round without pipe-deadlock risk. The worker holds no
//! cross-job state: determinism lives entirely in the job (params +
//! seed + shard), exactly as for the in-process executors.
//!
//! Fault injection: a job may carry a [`Fault`] the worker executes
//! faithfully — [`Fault::Crash`] exits the loop without replying (the
//! parent sees EOF, the same observable as a crashed or killed worker),
//! [`Fault::Hang`] stalls forever (only the parent's deadline reaper
//! can detect it), [`Fault::Delay`] sleeps before replying normally,
//! and [`Fault::CorruptReply`] flips one bit of the reply frame (the
//! parent's checksum catches it as a typed error). Each triggers the
//! matching detection/recovery path in
//! [`ProcessRunner`](crate::ProcessRunner). A [`Message::Heartbeat`] is
//! echoed back verbatim — the parent's liveness/version probe.

use std::io::{BufReader, BufWriter, Read, Write};

use coverage_sketch::{DynamicSketch, DynamicSnapshot, SketchSnapshot, ThresholdSketch};

use crate::fault::Fault;
use crate::net::chunk::{ChunkVerdict, ChunkedBuild};
use crate::proto::{read_message, write_corrupted_message, write_message, Message, ProtoError};

/// Execute a job's pre-reply fault, if any. Returns `false` when the
/// worker must die silently (crash), `true` when it should proceed to
/// reply (possibly after a delay). [`Fault::Hang`] never returns.
fn pre_reply_fault(fault: &Option<Fault>) -> bool {
    match fault {
        Some(Fault::Crash) => false,
        Some(Fault::Hang) => loop {
            // Stall forever: the parent's deadline reaper kills us.
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
        Some(Fault::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            true
        }
        Some(Fault::CorruptReply) | None => true,
        // Network faults are executed coordinator-side by the socket
        // writer and never ride in job frames; a worker that does see
        // one treats it as no fault (the codec is total either way).
        Some(Fault::DropConn) | Some(Fault::Stall(_)) | Some(Fault::DupChunk) => true,
    }
}

/// Write `reply`, honoring a [`Fault::CorruptReply`] injection.
fn write_reply(
    output: &mut impl Write,
    reply: &Message,
    fault: &Option<Fault>,
    seed: u64,
) -> Result<u64, ProtoError> {
    match fault {
        Some(Fault::CorruptReply) => write_corrupted_message(output, reply, seed),
        _ => write_message(output, reply),
    }
}

/// Serve framed jobs from `input` until EOF, shutdown, or an injected
/// failure. Every job produces exactly one in-order reply on `output`.
///
/// Returns `Ok(())` on a clean end (EOF between frames, an explicit
/// [`Message::Shutdown`], or an injected failure) and the underlying
/// [`ProtoError`] when the pipe breaks or a frame is corrupt.
pub fn worker_loop(input: &mut impl Read, output: &mut impl Write) -> Result<(), ProtoError> {
    // At most one chunked shard stream is open at a time (the
    // coordinator never pipelines a second job before the reply).
    let mut chunked: Option<ChunkedBuild> = None;
    // The (shard, chunk count) of the most recently completed stream,
    // so a duplicate of its tail arriving *after* completion is
    // recognized and dropped instead of killing the connection.
    let mut finished: Option<(u32, u32)> = None;
    loop {
        let msg = match read_message(input) {
            Ok((msg, _)) => msg,
            Err(ProtoError::Eof) => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            Message::JobSketch {
                params,
                seed,
                ship,
                fault,
                batch,
                edges,
            } => {
                if !pre_reply_fault(&fault) {
                    // Injected death: leave without replying. The parent
                    // observes EOF on our stdout, indistinguishable from
                    // a crash.
                    return Ok(());
                }
                let mut sketch = ThresholdSketch::new(params, seed);
                for chunk in edges.chunks(batch.max(1)) {
                    sketch.update_batch(chunk);
                }
                let reply = Message::ReplySketch {
                    snapshot: SketchSnapshot::of(&sketch),
                    ship,
                };
                write_reply(output, &reply, &fault, seed)?;
            }
            Message::JobDynamic {
                params,
                seed,
                ship,
                fault,
                batch,
                updates,
            } => {
                if !pre_reply_fault(&fault) {
                    return Ok(());
                }
                let mut sketch = DynamicSketch::new(params, seed);
                for chunk in updates.chunks(batch.max(1)) {
                    sketch.update_batch(chunk);
                }
                let reply = Message::ReplyDynamic {
                    snapshot: DynamicSnapshot::of(&sketch),
                    ship,
                };
                write_reply(output, &reply, &fault, seed)?;
            }
            Message::Heartbeat { nonce } => {
                // Liveness/version probe: echo the nonce verbatim so the
                // parent can match reply to probe.
                write_message(output, &Message::Heartbeat { nonce })?;
            }
            Message::ChunkStartSketch {
                shard,
                chunks,
                params,
                seed,
                ship,
                fault,
                batch,
            } => {
                if chunked.is_some() {
                    return Err(ProtoError::Wire(coverage_sketch::WireError::Malformed(
                        "chunk stream opened while one is in progress",
                    )));
                }
                let build = ChunkedBuild::sketch(shard, chunks, params, seed, ship, fault, batch);
                if build.complete() {
                    // Empty shard: reply immediately.
                    if !finish_chunked(output, build)? {
                        return Ok(());
                    }
                } else {
                    chunked = Some(build);
                }
            }
            Message::ChunkStartDynamic {
                shard,
                chunks,
                params,
                seed,
                ship,
                fault,
                batch,
            } => {
                if chunked.is_some() {
                    return Err(ProtoError::Wire(coverage_sketch::WireError::Malformed(
                        "chunk stream opened while one is in progress",
                    )));
                }
                let build = ChunkedBuild::dynamic(shard, chunks, params, seed, ship, fault, batch);
                if build.complete() {
                    if !finish_chunked(output, build)? {
                        return Ok(());
                    }
                } else {
                    chunked = Some(build);
                }
            }
            Message::JobChunk {
                shard,
                index,
                count,
                payload,
            } => {
                let Some(build) = chunked.as_mut() else {
                    if finished == Some((shard, count)) && index < count {
                        // A straggling duplicate from the stream that
                        // just completed: dropped like any other replay.
                        continue;
                    }
                    return Err(ProtoError::Wire(coverage_sketch::WireError::Malformed(
                        "chunk without an open stream",
                    )));
                };
                match build.accept(shard, index, count, payload)? {
                    ChunkVerdict::Ingested => {
                        // Ack means *ingested*: the coordinator's flow
                        // control and overlap observation both rely on
                        // that.
                        write_message(output, &Message::ChunkAck { shard, index })?;
                        if build.complete() {
                            let build = chunked.take().expect("stream is open");
                            finished = Some((shard, count));
                            if !finish_chunked(output, build)? {
                                return Ok(());
                            }
                        }
                    }
                    // A replayed chunk: dropped silently — no ack, no
                    // ingest, sketch untouched.
                    ChunkVerdict::DuplicateRejected => {}
                }
            }
            Message::Shutdown => return Ok(()),
            Message::ReplySketch { .. }
            | Message::ReplyDynamic { .. }
            | Message::ChunkAck { .. } => {
                // Replies and acks flow worker → parent only; receiving
                // one here means the pipes are crossed.
                return Err(ProtoError::Wire(coverage_sketch::WireError::Malformed(
                    "worker received a reply message",
                )));
            }
        }
    }
}

/// Close a completed chunk stream: execute its pre-reply fault and
/// write the reply. Returns `false` when the injected fault says the
/// worker must die silently.
fn finish_chunked(output: &mut impl Write, build: ChunkedBuild) -> Result<bool, ProtoError> {
    let (reply, fault, seed) = build.finish()?;
    if !pre_reply_fault(&fault) {
        return Ok(false);
    }
    write_reply(output, &reply, &fault, seed)?;
    Ok(true)
}

/// Run [`worker_loop`] over this process's stdin/stdout — the body of
/// the CLI's hidden `worker` subcommand. Returns the process exit code.
pub fn run_stdio() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = BufWriter::new(stdout.lock());
    match worker_loop(&mut input, &mut output) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("worker: {e}");
            1
        }
    }
}

/// Dial the coordinator at `addr` and run [`worker_loop`] over the TCP
/// connection — the body of `coverage worker --connect HOST:PORT`.
/// Returns the process exit code. The framed protocol is byte-identical
/// to the pipe transport; only the liveness story changes (the
/// coordinator probes with heartbeats instead of watching for EOF).
pub fn run_connect(addr: &str) -> i32 {
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("worker: connect {addr}: {e}");
            return 1;
        }
    };
    // Replies and acks are latency-sensitive (the coordinator's flow
    // control waits on acks); don't let Nagle batch them.
    let _ = stream.set_nodelay(true);
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("worker: {e}");
            return 1;
        }
    };
    let mut input = BufReader::new(read_half);
    let mut output = BufWriter::new(stream);
    match worker_loop(&mut input, &mut output) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("worker: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::ShipFormat;
    use coverage_core::Edge;
    use coverage_sketch::{DynamicSketchParams, SketchParams};
    use coverage_stream::{SignedEdge, VecStream};

    fn shard_edges(n: u64) -> Vec<Edge> {
        (0..n).map(|e| Edge::new((e % 5) as u32, e * 7)).collect()
    }

    #[test]
    fn worker_builds_the_same_sketch_as_inline() {
        let params = SketchParams::with_budget(5, 2, 0.5, 120);
        let edges = shard_edges(600);
        let mut jobs = Vec::new();
        write_message(
            &mut jobs,
            &Message::JobSketch {
                params,
                seed: 33,
                ship: ShipFormat::Binary,
                fault: None,
                batch: 128,
                edges: edges.clone(),
            },
        )
        .unwrap();
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        let (reply, _) = read_message(&mut &replies[..]).unwrap();
        let inline = ThresholdSketch::from_stream(params, 33, &VecStream::new(5, edges));
        match reply {
            Message::ReplySketch { snapshot, .. } => {
                assert_eq!(snapshot, SketchSnapshot::of(&inline));
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn worker_answers_jobs_in_order() {
        let params = SketchParams::with_budget(3, 1, 0.5, 60);
        let mut jobs = Vec::new();
        for seed in [1u64, 2, 3] {
            write_message(
                &mut jobs,
                &Message::JobSketch {
                    params,
                    seed,
                    ship: ShipFormat::Binary,
                    fault: None,
                    batch: 64,
                    edges: shard_edges(100),
                },
            )
            .unwrap();
        }
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        let mut cursor = &replies[..];
        for seed in [1u64, 2, 3] {
            let (reply, _) = read_message(&mut cursor).unwrap();
            match reply {
                Message::ReplySketch { snapshot, .. } => assert_eq!(snapshot.raw_seed, {
                    coverage_hash::UnitHash::new(seed).seed()
                }),
                other => panic!("wrong reply: {other:?}"),
            }
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn injected_failure_dies_without_reply() {
        let params = SketchParams::with_budget(3, 1, 0.5, 60);
        let mut jobs = Vec::new();
        write_message(
            &mut jobs,
            &Message::JobSketch {
                params,
                seed: 1,
                ship: ShipFormat::Binary,
                fault: Some(Fault::Crash),
                batch: 64,
                edges: shard_edges(50),
            },
        )
        .unwrap();
        // A second job that would normally be answered.
        write_message(
            &mut jobs,
            &Message::JobSketch {
                params,
                seed: 2,
                ship: ShipFormat::Binary,
                fault: None,
                batch: 64,
                edges: shard_edges(50),
            },
        )
        .unwrap();
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        assert!(replies.is_empty(), "failing worker must not reply");
    }

    #[test]
    fn dynamic_job_roundtrips_through_worker() {
        let params = DynamicSketchParams::new(SketchParams::with_budget(4, 2, 0.5, 90));
        let updates: Vec<SignedEdge> = (0..300u64)
            .map(|e| {
                let edge = Edge::new((e % 4) as u32, e);
                if e % 5 == 0 {
                    SignedEdge::delete(edge)
                } else {
                    SignedEdge::insert(edge)
                }
            })
            .collect();
        let mut jobs = Vec::new();
        write_message(
            &mut jobs,
            &Message::JobDynamic {
                params,
                seed: 19,
                ship: ShipFormat::Json,
                fault: None,
                batch: 77,
                updates: updates.clone(),
            },
        )
        .unwrap();
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        let (reply, _) = read_message(&mut &replies[..]).unwrap();
        let mut inline = DynamicSketch::new(params, 19);
        inline.update_batch(&updates);
        match reply {
            Message::ReplyDynamic { snapshot, .. } => {
                assert_eq!(snapshot, DynamicSnapshot::of(&inline));
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn shutdown_ends_the_loop() {
        let mut jobs = Vec::new();
        write_message(&mut jobs, &Message::Shutdown).unwrap();
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        assert!(replies.is_empty());
    }

    #[test]
    fn delayed_job_still_replies_identically() {
        let params = SketchParams::with_budget(3, 1, 0.5, 60);
        let edges = shard_edges(80);
        let replies = |fault| {
            let mut jobs = Vec::new();
            write_message(
                &mut jobs,
                &Message::JobSketch {
                    params,
                    seed: 4,
                    ship: ShipFormat::Binary,
                    fault,
                    batch: 32,
                    edges: edges.clone(),
                },
            )
            .unwrap();
            let mut out = Vec::new();
            worker_loop(&mut &jobs[..], &mut out).unwrap();
            out
        };
        // A short delay changes the timing, never the bytes.
        assert_eq!(replies(Some(Fault::Delay(5))), replies(None));
    }

    #[test]
    fn corrupt_reply_fails_the_parent_checksum() {
        let params = SketchParams::with_budget(3, 1, 0.5, 60);
        let mut jobs = Vec::new();
        write_message(
            &mut jobs,
            &Message::JobSketch {
                params,
                seed: 21,
                ship: ShipFormat::Binary,
                fault: Some(Fault::CorruptReply),
                batch: 32,
                edges: shard_edges(120),
            },
        )
        .unwrap();
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        assert!(!replies.is_empty(), "corrupt replies still travel");
        assert!(
            matches!(read_message(&mut &replies[..]), Err(ProtoError::Wire(_))),
            "a corrupted reply must be a typed wire error on the parent side"
        );
    }

    #[test]
    fn heartbeat_is_echoed_verbatim() {
        let mut jobs = Vec::new();
        write_message(&mut jobs, &Message::Heartbeat { nonce: 77 }).unwrap();
        write_message(&mut jobs, &Message::Heartbeat { nonce: u64::MAX }).unwrap();
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        let mut cursor = &replies[..];
        for expect in [77u64, u64::MAX] {
            match read_message(&mut cursor).unwrap().0 {
                Message::Heartbeat { nonce } => assert_eq!(nonce, expect),
                other => panic!("wrong reply: {other:?}"),
            }
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn chunked_stream_acks_every_chunk_and_replies_like_a_blob_job() {
        let params = SketchParams::with_budget(5, 2, 0.5, 120);
        let edges = shard_edges(600);
        let plan = crate::net::chunk::plan_sketch(
            4,
            &edges,
            100,
            params,
            33,
            ShipFormat::Binary,
            None,
            128,
        );
        let mut jobs = Vec::new();
        write_message(&mut jobs, &plan.start).unwrap();
        for chunk in &plan.chunks {
            write_message(&mut jobs, chunk).unwrap();
        }
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        let mut cursor = &replies[..];
        for expect in 0..6u32 {
            match read_message(&mut cursor).unwrap().0 {
                Message::ChunkAck { shard, index } => {
                    assert_eq!((shard, index), (4, expect));
                }
                other => panic!("expected an ack: {other:?}"),
            }
        }
        let inline = ThresholdSketch::from_stream(params, 33, &VecStream::new(5, edges));
        match read_message(&mut cursor).unwrap().0 {
            Message::ReplySketch { snapshot, .. } => {
                assert_eq!(snapshot, SketchSnapshot::of(&inline));
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn duplicated_chunks_are_not_acked_twice_and_never_double_ingested() {
        // Dynamic build: the linear sketch is not idempotent, so a
        // duplicate that slipped through would change the snapshot.
        let params = DynamicSketchParams::new(SketchParams::with_budget(4, 2, 0.5, 90));
        let updates: Vec<SignedEdge> = (0..300u64)
            .map(|e| SignedEdge::insert(Edge::new((e % 4) as u32, e)))
            .collect();
        let plan = crate::net::chunk::plan_dynamic(
            0,
            &updates,
            64,
            params,
            19,
            ShipFormat::Binary,
            None,
            77,
        );
        let mut jobs = Vec::new();
        write_message(&mut jobs, &plan.start).unwrap();
        for chunk in &plan.chunks {
            // Every chunk delivered twice — the dup@N fault's shape.
            write_message(&mut jobs, chunk).unwrap();
            write_message(&mut jobs, chunk).unwrap();
        }
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        let mut cursor = &replies[..];
        let mut acks = 0;
        loop {
            match read_message(&mut cursor).unwrap().0 {
                Message::ChunkAck { .. } => acks += 1,
                Message::ReplyDynamic { snapshot, .. } => {
                    let mut inline = DynamicSketch::new(params, 19);
                    for sub in updates.chunks(77) {
                        inline.update_batch(sub);
                    }
                    assert_eq!(snapshot, DynamicSnapshot::of(&inline));
                    break;
                }
                other => panic!("unexpected frame: {other:?}"),
            }
        }
        assert_eq!(acks, plan.chunks.len(), "one ack per unique chunk");
        assert!(cursor.is_empty());
    }

    #[test]
    fn chunk_gap_is_a_typed_error_and_crash_fault_ends_a_chunked_stream() {
        let params = SketchParams::with_budget(3, 1, 0.5, 60);
        // Gap: a chunk stream whose first frame has index 1.
        let mut jobs = Vec::new();
        let plan = crate::net::chunk::plan_sketch(
            0,
            &shard_edges(100),
            40,
            params,
            1,
            ShipFormat::Binary,
            None,
            32,
        );
        write_message(&mut jobs, &plan.start).unwrap();
        write_message(&mut jobs, &plan.chunks[1]).unwrap();
        let mut replies = Vec::new();
        assert!(worker_loop(&mut &jobs[..], &mut replies).is_err());

        // A crash fault on the stream kills the worker after the last
        // chunk, without a reply (acks still travel).
        let mut jobs = Vec::new();
        let plan = crate::net::chunk::plan_sketch(
            0,
            &shard_edges(100),
            40,
            params,
            1,
            ShipFormat::Binary,
            Some(Fault::Crash),
            32,
        );
        write_message(&mut jobs, &plan.start).unwrap();
        for chunk in &plan.chunks {
            write_message(&mut jobs, chunk).unwrap();
        }
        let mut replies = Vec::new();
        worker_loop(&mut &jobs[..], &mut replies).unwrap();
        let mut cursor = &replies[..];
        for _ in 0..plan.chunks.len() {
            assert!(matches!(
                read_message(&mut cursor).unwrap().0,
                Message::ChunkAck { .. }
            ));
        }
        assert!(cursor.is_empty(), "crashing stream must not reply");
    }

    #[test]
    fn old_version_frame_is_a_typed_error_not_a_hang() {
        // A version-1 frame (the version field is validated before the
        // checksum, so patching the bytes is enough to simulate an old
        // peer).
        let mut jobs = Vec::new();
        write_message(&mut jobs, &Message::Heartbeat { nonce: 1 }).unwrap();
        jobs[4] = 1;
        jobs[5] = 0;
        let mut replies = Vec::new();
        let err = worker_loop(&mut &jobs[..], &mut replies).unwrap_err();
        assert!(matches!(
            err,
            ProtoError::Wire(coverage_sketch::WireError::UnsupportedVersion { found: 1 })
        ));
        assert!(replies.is_empty());
    }
}
