//! Space accounting.
//!
//! The paper's headline claims are *space* bounds, so every streaming
//! structure in this repository reports how much it stored. The unit of
//! record is **edges** (set–element pairs retained), matching Table 1 and
//! Definition 2.1 ("the number of edges in `H'_{p*}` is at most …"); we
//! additionally track auxiliary machine words (heaps, counters, sampled-id
//! tables) so no structure can hide state outside the edge count.

use serde::{Deserialize, Serialize};

/// Peak space and pass count of one streaming run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceReport {
    /// Peak number of stored membership edges.
    pub peak_edges: u64,
    /// Peak auxiliary words (hash values, heap entries, counters).
    pub peak_aux_words: u64,
    /// Number of passes over the stream.
    pub passes: u32,
}

impl SpaceReport {
    /// Total peak words assuming one word per stored edge endpoint pair
    /// (an edge = 2 words) plus auxiliary words.
    pub fn total_words(&self) -> u64 {
        2 * self.peak_edges + self.peak_aux_words
    }

    /// Combine two reports of structures that coexist (peaks add; passes
    /// take the maximum since the structures share the same pass).
    pub fn coexist(self, other: SpaceReport) -> SpaceReport {
        SpaceReport {
            peak_edges: self.peak_edges + other.peak_edges,
            peak_aux_words: self.peak_aux_words + other.peak_aux_words,
            passes: self.passes.max(other.passes),
        }
    }

    /// Combine two reports of structures used in sequence (peaks take the
    /// max; passes add).
    pub fn sequential(self, other: SpaceReport) -> SpaceReport {
        SpaceReport {
            peak_edges: self.peak_edges.max(other.peak_edges),
            peak_aux_words: self.peak_aux_words.max(other.peak_aux_words),
            passes: self.passes + other.passes,
        }
    }
}

/// Running peak tracker for a single structure.
///
/// Two auxiliary components feed the aux peak: **live** words
/// ([`add_aux`](Self::add_aux) / [`remove_aux`](Self::remove_aux)) for
/// entry-proportional bookkeeping, and a monotone **capacity floor**
/// ([`set_aux_capacity`](Self::set_aux_capacity)) for backing
/// allocations — arenas, open-addressing tables, pooled buffers — whose
/// memory stays resident even when their entries are released. The
/// reported peak is the high-water mark of `live + capacity`, so a
/// structure that evicts entries out of a grown arena can never
/// understate what the allocator actually holds.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpaceTracker {
    cur_edges: u64,
    cur_aux: u64,
    cap_aux: u64,
    peak_edges: u64,
    peak_aux: u64,
}

impl SpaceTracker {
    /// Fresh tracker with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `d` more stored edges.
    #[inline]
    pub fn add_edges(&mut self, d: u64) {
        self.cur_edges += d;
        self.peak_edges = self.peak_edges.max(self.cur_edges);
    }

    /// Record `d` edges released. Over-release is an accounting bug in
    /// the caller — debug builds assert on it — but release builds
    /// saturate at zero rather than wrap: a u64 underflow here would
    /// permanently inflate the reported peak by ~2⁶⁴, corrupting every
    /// space metric downstream (the monotone-count assumption deletion
    /// workloads broke).
    #[inline]
    pub fn remove_edges(&mut self, d: u64) {
        debug_assert!(self.cur_edges >= d, "edge meter over-release");
        self.cur_edges = self.cur_edges.saturating_sub(d);
    }

    /// Record `d` more auxiliary words.
    #[inline]
    pub fn add_aux(&mut self, d: u64) {
        self.cur_aux += d;
        self.touch_aux_peak();
    }

    /// Record that backing allocations (arena, table, pooled buffers)
    /// currently span `words` machine words of **capacity**. The floor
    /// is monotone — capacity never shrinks while the structure lives —
    /// and is counted into the aux peak alongside live words, so
    /// [`SpaceReport::peak_aux_words`] cannot understate real memory
    /// when entries are released out of a still-allocated arena.
    #[inline]
    pub fn set_aux_capacity(&mut self, words: u64) {
        self.cap_aux = self.cap_aux.max(words);
        self.touch_aux_peak();
    }

    #[inline]
    fn touch_aux_peak(&mut self) {
        self.peak_aux = self.peak_aux.max(self.cur_aux + self.cap_aux);
    }

    /// Record `d` auxiliary words released. Same contract as
    /// [`remove_edges`](Self::remove_edges): debug-assert on
    /// over-release, saturate instead of wrapping in release.
    #[inline]
    pub fn remove_aux(&mut self, d: u64) {
        debug_assert!(self.cur_aux >= d, "aux meter over-release");
        self.cur_aux = self.cur_aux.saturating_sub(d);
    }

    /// Currently stored edges.
    pub fn current_edges(&self) -> u64 {
        self.cur_edges
    }

    /// Snapshot into a report with the given pass count.
    pub fn report(&self, passes: u32) -> SpaceReport {
        SpaceReport {
            peak_edges: self.peak_edges,
            peak_aux_words: self.peak_aux,
            passes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_peaks_not_currents() {
        let mut t = SpaceTracker::new();
        t.add_edges(10);
        t.remove_edges(4);
        t.add_edges(2);
        // current = 8, peak = 10
        assert_eq!(t.current_edges(), 8);
        assert_eq!(t.report(1).peak_edges, 10);
    }

    /// Release builds: over-release clamps at zero — a u64 wrap here
    /// would report a ~2⁶⁴ peak forever after.
    #[cfg(not(debug_assertions))]
    #[test]
    fn over_release_saturates_instead_of_wrapping() {
        let mut t = SpaceTracker::new();
        t.add_edges(2);
        t.remove_edges(5);
        assert_eq!(t.current_edges(), 0);
        t.add_edges(3);
        assert_eq!(t.current_edges(), 3);
        assert_eq!(t.report(1).peak_edges, 3);
        t.add_aux(1);
        t.remove_aux(10);
        assert_eq!(t.report(1).peak_aux_words, 1);
    }

    /// Debug builds: over-release is caught loudly — it is always an
    /// accounting bug in the caller.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "edge meter over-release")]
    fn over_release_asserts_in_debug_builds() {
        let mut t = SpaceTracker::new();
        t.add_edges(2);
        t.remove_edges(5);
    }

    /// The arena-capacity contract: once a backing allocation grows, the
    /// reported aux peak includes its full capacity — releasing live
    /// entries (evictions) must not let the peak understate resident
    /// memory, and live words stack on top of the floor.
    #[test]
    fn aux_capacity_floor_survives_releases() {
        let mut t = SpaceTracker::new();
        t.add_aux(10); // live bookkeeping
        t.set_aux_capacity(100); // arena grew to 100 words
        assert_eq!(t.report(1).peak_aux_words, 110);
        t.remove_aux(10); // evict everything…
        assert_eq!(t.report(1).peak_aux_words, 110); // …peak keeps the floor
        t.add_aux(4);
        // live(4) + capacity(100) = 104 < previous peak: peak unchanged.
        assert_eq!(t.report(1).peak_aux_words, 110);
        t.add_aux(20);
        // live(24) + capacity(100) = 124: new high-water mark.
        assert_eq!(t.report(1).peak_aux_words, 124);
        // The floor is monotone: a smaller capacity report cannot lower it.
        t.set_aux_capacity(50);
        t.set_aux_capacity(120);
        assert_eq!(t.report(1).peak_aux_words, 24 + 120);
    }

    #[test]
    fn aux_words_tracked_separately() {
        let mut t = SpaceTracker::new();
        t.add_aux(100);
        t.remove_aux(50);
        t.add_edges(1);
        let r = t.report(2);
        assert_eq!(r.peak_aux_words, 100);
        assert_eq!(r.peak_edges, 1);
        assert_eq!(r.passes, 2);
        assert_eq!(r.total_words(), 102);
    }

    #[test]
    fn coexist_adds_peaks() {
        let a = SpaceReport {
            peak_edges: 10,
            peak_aux_words: 5,
            passes: 1,
        };
        let b = SpaceReport {
            peak_edges: 20,
            peak_aux_words: 1,
            passes: 2,
        };
        let c = a.coexist(b);
        assert_eq!(c.peak_edges, 30);
        assert_eq!(c.peak_aux_words, 6);
        assert_eq!(c.passes, 2);
    }

    #[test]
    fn sequential_takes_max_peaks_and_adds_passes() {
        let a = SpaceReport {
            peak_edges: 10,
            peak_aux_words: 5,
            passes: 1,
        };
        let b = SpaceReport {
            peak_edges: 20,
            peak_aux_words: 1,
            passes: 2,
        };
        let c = a.sequential(b);
        assert_eq!(c.peak_edges, 20);
        assert_eq!(c.peak_aux_words, 5);
        assert_eq!(c.passes, 3);
    }
}
