//! Arrival-order policies.
//!
//! The edge-arrival model promises nothing about order, so robustness to
//! order is part of what the experiments probe (experiment A3). Four
//! policies cover the interesting regimes:
//!
//! * [`ArrivalOrder::Random`] — a uniform shuffle (the "average case");
//! * [`ArrivalOrder::SetGrouped`] — all edges of a set arrive together:
//!   this *is* the set-arrival model, and is what set-arrival baselines
//!   (Saha–Getoor, SieveStreaming) require;
//! * [`ArrivalOrder::ElementGrouped`] — all copies of an element arrive
//!   together (the transpose view; stresses per-element degree caps);
//! * [`ArrivalOrder::ByHashDesc`] — elements arrive in *descending* sketch
//!   hash order: every element initially looks "sampled" and is later
//!   evicted, maximizing sketch churn. This is the adversarial order for
//!   the threshold sketch's eviction machinery.

use coverage_core::Edge;
use coverage_hash::{SplitMix64, UnitHash};

/// How a materialized edge list is ordered before streaming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// Keep the order as constructed (set-major for instance dumps).
    AsIs,
    /// Uniform random shuffle with the given seed.
    Random(u64),
    /// Group edges by set id (emulates the set-arrival model); sets appear
    /// in a shuffled order determined by the seed.
    SetGrouped(u64),
    /// Group edges by element id; elements appear in a shuffled order
    /// determined by the seed.
    ElementGrouped(u64),
    /// Sort edges by descending `UnitHash(seed)` of their element: the
    /// adversarial order for a bottom-hash sampling sketch.
    ByHashDesc(u64),
}

impl ArrivalOrder {
    /// Apply the policy to `edges` in place.
    pub fn apply(self, edges: &mut [Edge]) {
        match self {
            ArrivalOrder::AsIs => {}
            ArrivalOrder::Random(seed) => shuffle(edges, seed),
            ArrivalOrder::SetGrouped(seed) => {
                // Shuffle first so within-group order is randomized, then
                // stable-sort by a per-set random rank.
                shuffle(edges, seed);
                let rank = UnitHash::new(seed ^ 0xA5A5_A5A5);
                edges.sort_by_key(|e| rank.hash(e.set.0 as u64));
            }
            ArrivalOrder::ElementGrouped(seed) => {
                shuffle(edges, seed);
                let rank = UnitHash::new(seed ^ 0x5A5A_5A5A);
                edges.sort_by_key(|e| rank.hash(e.element.0));
            }
            ArrivalOrder::ByHashDesc(seed) => {
                let h = UnitHash::new(seed);
                edges.sort_by_key(|e| std::cmp::Reverse(h.hash(e.element.0)));
            }
        }
    }
}

/// Fisher–Yates shuffle driven by SplitMix64 (no `rand` needed here).
fn shuffle(edges: &mut [Edge], seed: u64) {
    let mut rng = SplitMix64::new(seed ^ 0xD1B5_4A32_D192_ED03);
    for i in (1..edges.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        edges.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::{ElementId, SetId};

    fn edges() -> Vec<Edge> {
        let mut v = Vec::new();
        for s in 0..5u32 {
            for e in 0..8u64 {
                v.push(Edge::new(s, e * 3 + s as u64 * 100));
            }
        }
        v
    }

    fn is_permutation(a: &[Edge], b: &[Edge]) -> bool {
        let mut a = a.to_vec();
        let mut b = b.to_vec();
        a.sort();
        b.sort();
        a == b
    }

    #[test]
    fn all_orders_are_permutations() {
        let original = edges();
        for order in [
            ArrivalOrder::AsIs,
            ArrivalOrder::Random(1),
            ArrivalOrder::SetGrouped(2),
            ArrivalOrder::ElementGrouped(3),
            ArrivalOrder::ByHashDesc(4),
        ] {
            let mut e = original.clone();
            order.apply(&mut e);
            assert!(is_permutation(&original, &e), "{order:?}");
        }
    }

    #[test]
    fn random_shuffle_is_seed_deterministic() {
        let mut a = edges();
        let mut b = edges();
        ArrivalOrder::Random(7).apply(&mut a);
        ArrivalOrder::Random(7).apply(&mut b);
        assert_eq!(a, b);
        let mut c = edges();
        ArrivalOrder::Random(8).apply(&mut c);
        assert_ne!(a, c, "different seeds should differ on 40 edges");
    }

    #[test]
    fn set_grouped_is_contiguous_per_set() {
        let mut e = edges();
        ArrivalOrder::SetGrouped(5).apply(&mut e);
        let mut seen: Vec<SetId> = Vec::new();
        for edge in &e {
            match seen.last() {
                Some(&last) if last == edge.set => {}
                _ => {
                    assert!(
                        !seen.contains(&edge.set),
                        "set {:?} appears in two separate runs",
                        edge.set
                    );
                    seen.push(edge.set);
                }
            }
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn element_grouped_is_contiguous_per_element() {
        let mut e: Vec<Edge> = vec![
            Edge::new(0u32, 1u64),
            Edge::new(1u32, 2u64),
            Edge::new(2u32, 1u64),
            Edge::new(3u32, 2u64),
        ];
        ArrivalOrder::ElementGrouped(9).apply(&mut e);
        let mut seen: Vec<ElementId> = Vec::new();
        for edge in &e {
            match seen.last() {
                Some(&last) if last == edge.element => {}
                _ => {
                    assert!(!seen.contains(&edge.element));
                    seen.push(edge.element);
                }
            }
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn by_hash_desc_sorts_by_element_hash() {
        let mut e = edges();
        let seed = 11;
        ArrivalOrder::ByHashDesc(seed).apply(&mut e);
        let h = UnitHash::new(seed);
        for w in e.windows(2) {
            assert!(h.hash(w[0].element.0) >= h.hash(w[1].element.0));
        }
    }
}
