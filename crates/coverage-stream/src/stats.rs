//! Harness-side stream statistics.
//!
//! Experiments print the true `n`, `m`, `|E|` of each workload next to the
//! space an algorithm used; this module computes those ground-truth
//! numbers by scanning the stream (the harness may use `O(m)` memory — the
//! algorithms under test may not).

use coverage_hash::FxHashSet;

use crate::source::EdgeStream;

/// Exact statistics of one pass over a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of sets in the family (as declared by the stream).
    pub num_sets: usize,
    /// Distinct elements observed.
    pub num_elements: usize,
    /// Total edge events (including duplicates).
    pub num_edge_events: usize,
    /// Distinct edges.
    pub num_distinct_edges: usize,
    /// Maximum element degree (over distinct edges).
    pub max_element_degree: usize,
}

impl StreamStats {
    /// Scan `stream` once and collect exact statistics.
    pub fn collect(stream: &dyn EdgeStream) -> Self {
        let mut elements: FxHashSet<u64> = FxHashSet::default();
        let mut edges: FxHashSet<(u32, u64)> = FxHashSet::default();
        let mut events = 0usize;
        stream.for_each(&mut |e| {
            events += 1;
            elements.insert(e.element.0);
            edges.insert((e.set.0, e.element.0));
        });
        let mut degree: coverage_hash::FxHashMap<u64, usize> = Default::default();
        for &(_, el) in &edges {
            *degree.entry(el).or_insert(0) += 1;
        }
        StreamStats {
            num_sets: stream.num_sets(),
            num_elements: elements.len(),
            num_edge_events: events,
            num_distinct_edges: edges.len(),
            max_element_degree: degree.values().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecStream;
    use coverage_core::Edge;

    #[test]
    fn collects_exact_counts() {
        let s = VecStream::new(
            3,
            vec![
                Edge::new(0u32, 1u64),
                Edge::new(1u32, 1u64),
                Edge::new(2u32, 1u64),
                Edge::new(0u32, 2u64),
                Edge::new(0u32, 2u64), // duplicate event
            ],
        );
        let st = StreamStats::collect(&s);
        assert_eq!(st.num_sets, 3);
        assert_eq!(st.num_elements, 2);
        assert_eq!(st.num_edge_events, 5);
        assert_eq!(st.num_distinct_edges, 4);
        assert_eq!(st.max_element_degree, 3);
    }

    #[test]
    fn empty_stream() {
        let s = VecStream::new(2, vec![]);
        let st = StreamStats::collect(&s);
        assert_eq!(st.num_elements, 0);
        assert_eq!(st.max_element_degree, 0);
    }
}
