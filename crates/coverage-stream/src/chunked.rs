//! Chunk-granularity adapters.
//!
//! [`ChunkedStream`] / [`ChunkedDynamicStream`] cap the batch size a
//! downstream consumer sees at a fixed `chunk`, turning one big
//! `for_each_batch` pass into a pipeline of bounded chunks (the shape the
//! pipelined parallel runner feeds through its channels).
//!
//! **Contract:** chunking changes *delivery granularity only*. The edge
//! sequence is untouched, and every length hint —
//! [`len_hint`](EdgeStream::len_hint),
//! [`update_len_hint`](DynamicEdgeStream::update_len_hint),
//! [`net_len_hint`](DynamicEdgeStream::net_len_hint) — is forwarded
//! **verbatim** from the inner stream. Hints describe how many edges a
//! pass carries, not how they are sliced; scaling or dropping them under
//! chunking was the bug the regression tests below (and the
//! `ShardedStream` composition tests in `coverage-dist`) pin down.

use crate::dynamic::{DynamicEdgeStream, SignedEdge};
use crate::source::EdgeStream;
use coverage_core::Edge;

/// An [`EdgeStream`] view that delivers batches of at most `chunk` edges.
pub struct ChunkedStream<'a> {
    inner: &'a dyn EdgeStream,
    chunk: usize,
}

impl<'a> ChunkedStream<'a> {
    /// Wrap `inner`, capping batch delivery at `chunk` edges (clamped to
    /// at least 1).
    pub fn new(inner: &'a dyn EdgeStream, chunk: usize) -> Self {
        ChunkedStream {
            inner,
            chunk: chunk.max(1),
        }
    }

    /// The configured chunk cap.
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

impl EdgeStream for ChunkedStream<'_> {
    fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }

    /// Forwarded verbatim: chunking does not change how many edges a pass
    /// carries.
    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn for_each(&self, f: &mut dyn FnMut(Edge)) {
        self.inner.for_each(f);
    }

    fn for_each_batch(&self, batch: usize, f: &mut dyn FnMut(&[Edge])) {
        self.inner.for_each_batch(batch.max(1).min(self.chunk), f);
    }
}

/// A [`DynamicEdgeStream`] view that delivers batches of at most `chunk`
/// signed updates.
pub struct ChunkedDynamicStream<'a> {
    inner: &'a dyn DynamicEdgeStream,
    chunk: usize,
}

impl<'a> ChunkedDynamicStream<'a> {
    /// Wrap `inner`, capping batch delivery at `chunk` updates (clamped
    /// to at least 1).
    pub fn new(inner: &'a dyn DynamicEdgeStream, chunk: usize) -> Self {
        ChunkedDynamicStream {
            inner,
            chunk: chunk.max(1),
        }
    }

    /// The configured chunk cap.
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

impl DynamicEdgeStream for ChunkedDynamicStream<'_> {
    fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }

    /// Forwarded verbatim: the pass still carries every update.
    fn update_len_hint(&self) -> Option<usize> {
        self.inner.update_len_hint()
    }

    /// Forwarded verbatim: survivors are a property of the updates, not
    /// of their slicing.
    fn net_len_hint(&self) -> Option<usize> {
        self.inner.net_len_hint()
    }

    fn for_each_update(&self, f: &mut dyn FnMut(SignedEdge)) {
        self.inner.for_each_update(f);
    }

    fn for_each_update_batch(&self, batch: usize, f: &mut dyn FnMut(&[SignedEdge])) {
        self.inner
            .for_each_update_batch(batch.max(1).min(self.chunk), f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::VecDynamicStream;
    use crate::source::VecStream;

    fn edges(n: usize) -> Vec<Edge> {
        (0..n)
            .map(|i| Edge::new((i % 3) as u32, i as u64))
            .collect()
    }

    #[test]
    fn hints_survive_chunking_verbatim() {
        let s = VecStream::new(3, edges(23));
        for chunk in [1usize, 4, 23, 1000] {
            let c = ChunkedStream::new(&s, chunk);
            assert_eq!(c.len_hint(), s.len_hint(), "chunk={chunk}");
            assert_eq!(c.num_sets(), s.num_sets());
        }
    }

    #[test]
    fn dynamic_hints_survive_chunking_verbatim() {
        let updates: Vec<SignedEdge> = edges(17)
            .into_iter()
            .map(SignedEdge::insert)
            .chain(edges(5).into_iter().map(SignedEdge::delete))
            .collect();
        let s = VecDynamicStream::new(3, updates);
        for chunk in [1usize, 8, 64] {
            let c = ChunkedDynamicStream::new(&s, chunk);
            assert_eq!(c.update_len_hint(), s.update_len_hint(), "chunk={chunk}");
            assert_eq!(c.net_len_hint(), s.net_len_hint(), "chunk={chunk}");
        }
    }

    #[test]
    fn chunking_caps_batch_size_but_preserves_sequence() {
        let s = VecStream::new(3, edges(23));
        let c = ChunkedStream::new(&s, 4);
        let mut flat = Vec::new();
        let mut max_seen = 0usize;
        c.for_each_batch(1000, &mut |chunk| {
            max_seen = max_seen.max(chunk.len());
            flat.extend_from_slice(chunk);
        });
        assert_eq!(flat, edges(23));
        assert_eq!(max_seen, 4, "delivery is capped at the chunk size");

        // A batch smaller than the chunk wins (the cap is a maximum).
        let mut sizes = Vec::new();
        c.for_each_batch(2, &mut |chunk| sizes.push(chunk.len()));
        assert!(sizes.iter().all(|&l| l <= 2));
    }

    #[test]
    fn dynamic_chunking_preserves_update_sequence() {
        let s = VecDynamicStream::new(3, edges(9).into_iter().map(SignedEdge::insert).collect());
        let c = ChunkedDynamicStream::new(&s, 2);
        let mut flat = Vec::new();
        c.for_each_update_batch(100, &mut |chunk| flat.extend_from_slice(chunk));
        let mut want = Vec::new();
        s.for_each_update(&mut |u| want.push(u));
        assert_eq!(flat, want);
    }

    #[test]
    fn zero_chunk_is_clamped() {
        let s = VecStream::new(3, edges(5));
        let c = ChunkedStream::new(&s, 0);
        assert_eq!(c.chunk(), 1);
        let mut count = 0usize;
        c.for_each_batch(10, &mut |chunk| count += chunk.len());
        assert_eq!(count, 5);
    }
}
