//! # coverage-stream
//!
//! Edge-arrival streaming substrate.
//!
//! The paper's model (Section 1.1): membership edges `(S, u)` arrive one at
//! a time **in arbitrary order**; multi-pass algorithms may traverse the
//! same stream several times. This crate provides:
//!
//! * [`source`] — the replayable [`EdgeStream`] trait (per-edge
//!   [`for_each`](EdgeStream::for_each) plus batched
//!   [`for_each_batch`](EdgeStream::for_each_batch) for hot loops that
//!   amortize dispatch) and its implementations ([`VecStream`] for
//!   materialized streams, [`FnStream`] for generator-backed streams
//!   that regenerate deterministically instead of storing edges);
//! * [`dynamic`] — the **dynamic** (insert/delete) extension:
//!   [`DynamicEdgeStream`] carries signed [`SignedEdge`] updates under a
//!   strict-turnstile contract, with [`InsertOnly`] embedding every
//!   insertion-only stream and [`surviving_edges`] computing the
//!   post-deletion ground truth;
//! * [`order`] — arrival-order policies (random, set-grouped = set-arrival
//!   emulation, element-grouped, adversarial by descending hash);
//! * [`meter`] — space accounting ([`SpaceReport`]) in the units the paper
//!   uses (stored edges) plus auxiliary words and pass counts; meters are
//!   non-negative by construction even under deletion workloads, and
//!   arena-backed structures report a monotone **capacity floor**
//!   ([`SpaceTracker::set_aux_capacity`]) so peaks never understate
//!   resident memory after evictions;
//! * [`stats`] — harness-side stream statistics.
//!
//! Streaming *algorithms* consume `&dyn EdgeStream` (or
//! `&dyn DynamicEdgeStream`) and report a [`SpaceReport`]; nothing in
//! this crate lets an algorithm cheat by seeking or storing the stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
pub mod dynamic;
pub mod meter;
pub mod order;
pub mod source;
pub mod stats;

pub use chunked::{ChunkedDynamicStream, ChunkedStream};
pub use dynamic::{
    surviving_edges, surviving_stream, validate_turnstile, DynamicEdgeStream, InsertOnly,
    SignedEdge, TurnstileViolation, UpdateKind, VecDynamicStream,
};
pub use meter::{SpaceReport, SpaceTracker};
pub use order::ArrivalOrder;
pub use source::{materialize, EdgeStream, FnStream, VecStream};
pub use stats::StreamStats;
