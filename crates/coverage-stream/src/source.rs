//! Replayable edge streams.
//!
//! [`EdgeStream`] is the only input interface the streaming algorithms see.
//! A stream knows `n` (the number of sets — the paper's algorithms size
//! their `Õ(n)` structures from it) but *not* `m`: the element universe is
//! revealed edge by edge, exactly as in the edge-arrival model.
//!
//! Multi-pass algorithms simply call [`EdgeStream::for_each`] once per
//! pass. Generator-backed streams ([`FnStream`]) regenerate the sequence
//! deterministically, so replay does not imply storage.

use coverage_core::{CoverageInstance, Edge};

/// A replayable, arbitrarily-ordered stream of membership edges.
pub trait EdgeStream {
    /// Number of sets `n` in the family (known a priori, as in the paper).
    fn num_sets(&self) -> usize;

    /// Total number of edges per pass, if cheaply known (diagnostics only —
    /// algorithms must not rely on it).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Deliver every edge, in this stream's fixed arrival order, to `f`.
    /// Calling this again replays the identical sequence (one extra pass).
    fn for_each(&self, f: &mut dyn FnMut(Edge));

    /// Deliver the stream as contiguous batches of at most `batch` edges,
    /// in arrival order, to `f`. Batched consumers (sketch hot loops, the
    /// parallel partitioner) amortize per-edge dynamic dispatch this way:
    /// one virtual call per `batch` edges instead of one per edge.
    ///
    /// The default implementation chunks [`for_each`](Self::for_each)
    /// through a reused buffer; materialized streams can override it to
    /// hand out sub-slices with no copy. Implementations must preserve
    /// arrival order and deliver every edge exactly once per pass.
    fn for_each_batch(&self, batch: usize, f: &mut dyn FnMut(&[Edge])) {
        let batch = batch.max(1);
        let mut buf: Vec<Edge> = Vec::with_capacity(batch);
        self.for_each(&mut |e| {
            buf.push(e);
            if buf.len() == batch {
                f(&buf);
                buf.clear();
            }
        });
        if !buf.is_empty() {
            f(&buf);
        }
    }
}

/// A fully materialized stream (tests, small workloads, order experiments).
#[derive(Clone, Debug)]
pub struct VecStream {
    num_sets: usize,
    edges: Vec<Edge>,
}

impl VecStream {
    /// A stream over `edges` for a family of `num_sets` sets.
    pub fn new(num_sets: usize, edges: Vec<Edge>) -> Self {
        VecStream { num_sets, edges }
    }

    /// Materialize an instance's edges in set-major order (apply an
    /// [`crate::order::ArrivalOrder`] afterwards for other orders).
    pub fn from_instance(inst: &CoverageInstance) -> Self {
        VecStream {
            num_sets: inst.num_sets(),
            edges: inst.edges().collect(),
        }
    }

    /// Borrow the underlying edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mutable access for order shuffling.
    pub fn edges_mut(&mut self) -> &mut Vec<Edge> {
        &mut self.edges
    }
}

impl EdgeStream for VecStream {
    fn num_sets(&self) -> usize {
        self.num_sets
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.edges.len())
    }

    fn for_each(&self, f: &mut dyn FnMut(Edge)) {
        for &e in &self.edges {
            f(e);
        }
    }

    /// Zero-copy override: batches are sub-slices of the stored edges.
    fn for_each_batch(&self, batch: usize, f: &mut dyn FnMut(&[Edge])) {
        for chunk in self.edges.chunks(batch.max(1)) {
            f(chunk);
        }
    }
}

/// A generator-backed stream: each pass re-invokes the generator, which
/// must be deterministic. This is how large workloads stream without the
/// harness itself holding `Ω(|E|)` memory.
pub struct FnStream<F>
where
    F: Fn(&mut dyn FnMut(Edge)),
{
    num_sets: usize,
    len_hint: Option<usize>,
    gen: F,
}

impl<F> FnStream<F>
where
    F: Fn(&mut dyn FnMut(Edge)),
{
    /// A stream that calls `gen` once per pass.
    pub fn new(num_sets: usize, gen: F) -> Self {
        FnStream {
            num_sets,
            len_hint: None,
            gen,
        }
    }

    /// Attach a length hint for diagnostics.
    pub fn with_len_hint(mut self, len: usize) -> Self {
        self.len_hint = Some(len);
        self
    }
}

impl<F> EdgeStream for FnStream<F>
where
    F: Fn(&mut dyn FnMut(Edge)),
{
    fn num_sets(&self) -> usize {
        self.num_sets
    }

    fn len_hint(&self) -> Option<usize> {
        self.len_hint
    }

    fn for_each(&self, f: &mut dyn FnMut(Edge)) {
        (self.gen)(f)
    }
}

/// Collect a stream into a [`CoverageInstance`] (harness/test helper; a
/// streaming algorithm doing this would of course be cheating).
pub fn materialize(stream: &dyn EdgeStream) -> CoverageInstance {
    let mut b = CoverageInstance::builder(stream.num_sets());
    stream.for_each(&mut |e| b.add_edge(e));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::SetId;

    fn edges() -> Vec<Edge> {
        vec![
            Edge::new(0u32, 10u64),
            Edge::new(1u32, 11u64),
            Edge::new(0u32, 11u64),
        ]
    }

    #[test]
    fn vec_stream_replays_identically() {
        let s = VecStream::new(2, edges());
        let mut a = Vec::new();
        let mut b = Vec::new();
        s.for_each(&mut |e| a.push(e));
        s.for_each(&mut |e| b.push(e));
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(s.len_hint(), Some(3));
    }

    #[test]
    fn fn_stream_regenerates() {
        let s = FnStream::new(4, |f| {
            for i in 0..5u64 {
                f(Edge::new((i % 4) as u32, i * 7));
            }
        })
        .with_len_hint(5);
        let mut count = 0;
        s.for_each(&mut |_| count += 1);
        s.for_each(&mut |_| count += 1);
        assert_eq!(count, 10);
        assert_eq!(s.num_sets(), 4);
        assert_eq!(s.len_hint(), Some(5));
    }

    #[test]
    fn batches_cover_the_stream_in_order() {
        let s = FnStream::new(4, |f| {
            for i in 0..23u64 {
                f(Edge::new((i % 4) as u32, i));
            }
        });
        for batch in [1usize, 4, 7, 23, 100] {
            let mut flat = Vec::new();
            let mut sizes = Vec::new();
            s.for_each_batch(batch, &mut |chunk| {
                sizes.push(chunk.len());
                flat.extend_from_slice(chunk);
            });
            let mut want = Vec::new();
            s.for_each(&mut |e| want.push(e));
            assert_eq!(flat, want, "batch={batch} must replay the exact sequence");
            for (i, &len) in sizes.iter().enumerate() {
                assert!(len <= batch);
                // Only the final batch may be short.
                if i + 1 < sizes.len() {
                    assert_eq!(len, batch);
                }
            }
        }
    }

    #[test]
    fn vec_stream_batches_are_zero_copy_slices() {
        let s = VecStream::new(2, edges());
        let mut flat = Vec::new();
        s.for_each_batch(2, &mut |chunk| flat.extend_from_slice(chunk));
        assert_eq!(flat, edges());
    }

    #[test]
    fn zero_batch_size_is_clamped() {
        let s = VecStream::new(2, edges());
        let mut count = 0usize;
        s.for_each_batch(0, &mut |chunk| count += chunk.len());
        assert_eq!(count, 3);
    }

    #[test]
    fn materialize_roundtrip() {
        let s = VecStream::new(2, edges());
        let inst = materialize(&s);
        assert_eq!(inst.num_sets(), 2);
        assert_eq!(inst.num_elements(), 2);
        assert_eq!(inst.num_edges(), 3);
        assert_eq!(inst.coverage(&[SetId(0), SetId(1)]), 2);
    }

    #[test]
    fn instance_stream_roundtrip() {
        let inst = CoverageInstance::from_edges(2, edges());
        let s = VecStream::from_instance(&inst);
        let inst2 = materialize(&s);
        assert_eq!(inst2.num_edges(), inst.num_edges());
        assert_eq!(inst2.num_elements(), inst.num_elements());
    }
}
