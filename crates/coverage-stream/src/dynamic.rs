//! Signed (insert/delete) edge streams — the **dynamic** edge-arrival
//! model.
//!
//! The paper's stream (Section 1.1) is insertion-only: membership edges
//! `(S, u)` arrive and never leave. Dynamic streams generalize this to
//! *signed* updates — an edge can be inserted and later deleted — the
//! model of McGregor–Vu (arXiv:1610.06199, Section 5) and
//! Chakrabarti–McGregor–Wirth (arXiv:2403.14087). Algorithms must answer
//! for the **surviving** edge set: the edges whose net multiplicity is
//! still 1 when the stream ends.
//!
//! ## The strict-turnstile contract
//!
//! Every stream fed to the dynamic algorithms must keep each edge's net
//! multiplicity in `{0, 1}` at all times:
//!
//! * a [`Delete`](UpdateKind::Delete) may only remove an edge that is
//!   currently present;
//! * an [`Insert`](UpdateKind::Insert) may only add an edge that is
//!   currently absent (re-inserting after a delete is fine).
//!
//! The linear sketches downstream (`coverage-sketch`'s dynamic sketch)
//! rely on deletions exactly cancelling insertions; a violating stream
//! corrupts them silently, so the harness-side
//! [`validate_turnstile`] checker exists and the workload generators in
//! `coverage-data` are tested against it.
//!
//! ## Worked example
//!
//! ```
//! use coverage_core::Edge;
//! use coverage_stream::dynamic::{
//!     surviving_edges, validate_turnstile, DynamicEdgeStream, SignedEdge, VecDynamicStream,
//! };
//!
//! // Insert three edges, then delete one and re-insert another elsewhere.
//! let stream = VecDynamicStream::new(
//!     2,
//!     vec![
//!         SignedEdge::insert(Edge::new(0u32, 10u64)),
//!         SignedEdge::insert(Edge::new(0u32, 11u64)),
//!         SignedEdge::insert(Edge::new(1u32, 10u64)),
//!         SignedEdge::delete(Edge::new(0u32, 11u64)), // 11 leaves S0
//!         SignedEdge::insert(Edge::new(0u32, 11u64)), // …and comes back
//!         SignedEdge::delete(Edge::new(1u32, 10u64)), // 10 leaves S1 for good
//!     ],
//! );
//! assert!(validate_turnstile(&stream).is_ok());
//!
//! // Net bookkeeping: 4 inserts minus 2 deletes = 2 surviving edges.
//! assert_eq!(stream.update_len_hint(), Some(6));
//! assert_eq!(stream.net_len_hint(), Some(2));
//!
//! // The surviving edge set is what any dynamic algorithm must answer for.
//! let survivors = surviving_edges(&stream);
//! assert_eq!(
//!     survivors,
//!     vec![
//!         Edge::new(0u32, 10u64),
//!         Edge::new(0u32, 11u64), // kept: it was re-inserted after its delete
//!     ]
//! );
//! ```

use coverage_core::Edge;
use coverage_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::source::{EdgeStream, VecStream};

/// The sign of one dynamic-stream update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateKind {
    /// The edge enters the graph (`+1` multiplicity).
    Insert,
    /// The edge leaves the graph (`−1` multiplicity).
    Delete,
}

/// One signed membership update `(S, u, ±1)` — the unit of a dynamic
/// edge stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignedEdge {
    /// The membership edge being inserted or deleted.
    pub edge: Edge,
    /// Whether this update adds or removes the edge.
    pub kind: UpdateKind,
}

impl SignedEdge {
    /// An insertion of `edge`.
    #[inline]
    pub fn insert(edge: Edge) -> Self {
        SignedEdge {
            edge,
            kind: UpdateKind::Insert,
        }
    }

    /// A deletion of `edge`.
    #[inline]
    pub fn delete(edge: Edge) -> Self {
        SignedEdge {
            edge,
            kind: UpdateKind::Delete,
        }
    }

    /// The update's multiplicity delta: `+1` for an insert, `−1` for a
    /// delete. Linear sketches consume exactly this.
    #[inline]
    pub fn sign(&self) -> i64 {
        match self.kind {
            UpdateKind::Insert => 1,
            UpdateKind::Delete => -1,
        }
    }
}

/// A replayable stream of signed edge updates — the dynamic counterpart
/// of [`EdgeStream`].
///
/// Like its insertion-only sibling, a dynamic stream knows `n` (the
/// number of sets) a priori, reveals elements update by update, and
/// replays the identical sequence on every pass. The two length hints are
/// deliberately separate: diagnostics that used to read
/// [`EdgeStream::len_hint`] must choose between *events processed*
/// ([`update_len_hint`](Self::update_len_hint), what throughput meters
/// want) and *edges surviving* ([`net_len_hint`](Self::net_len_hint),
/// what sizing heuristics want) — conflating them is exactly the
/// monotone-count assumption this trait exists to break.
pub trait DynamicEdgeStream {
    /// Number of sets `n` in the family (known a priori).
    fn num_sets(&self) -> usize;

    /// Total update events per pass — inserts **plus** deletes — if
    /// cheaply known (diagnostics only).
    fn update_len_hint(&self) -> Option<usize> {
        None
    }

    /// Net number of surviving edges — inserts **minus** deletes — if
    /// cheaply known (diagnostics only; saturates at zero rather than
    /// going negative on malformed streams).
    fn net_len_hint(&self) -> Option<usize> {
        None
    }

    /// Deliver every update, in this stream's fixed arrival order, to
    /// `f`. Calling this again replays the identical sequence.
    fn for_each_update(&self, f: &mut dyn FnMut(SignedEdge));

    /// Deliver the stream as contiguous batches of at most `batch`
    /// updates, in arrival order (the batched hot path, mirroring
    /// [`EdgeStream::for_each_batch`]).
    fn for_each_update_batch(&self, batch: usize, f: &mut dyn FnMut(&[SignedEdge])) {
        let batch = batch.max(1);
        let mut buf: Vec<SignedEdge> = Vec::with_capacity(batch);
        self.for_each_update(&mut |u| {
            buf.push(u);
            if buf.len() == batch {
                f(&buf);
                buf.clear();
            }
        });
        if !buf.is_empty() {
            f(&buf);
        }
    }
}

/// A fully materialized dynamic stream (tests, generated workloads).
#[derive(Clone, Debug)]
pub struct VecDynamicStream {
    num_sets: usize,
    updates: Vec<SignedEdge>,
    inserts: usize,
    deletes: usize,
}

impl VecDynamicStream {
    /// A stream over `updates` for a family of `num_sets` sets.
    pub fn new(num_sets: usize, updates: Vec<SignedEdge>) -> Self {
        let inserts = updates
            .iter()
            .filter(|u| u.kind == UpdateKind::Insert)
            .count();
        let deletes = updates.len() - inserts;
        VecDynamicStream {
            num_sets,
            updates,
            inserts,
            deletes,
        }
    }

    /// Borrow the underlying updates.
    pub fn updates(&self) -> &[SignedEdge] {
        &self.updates
    }

    /// Number of insert events.
    pub fn num_inserts(&self) -> usize {
        self.inserts
    }

    /// Number of delete events.
    pub fn num_deletes(&self) -> usize {
        self.deletes
    }
}

impl DynamicEdgeStream for VecDynamicStream {
    fn num_sets(&self) -> usize {
        self.num_sets
    }

    fn update_len_hint(&self) -> Option<usize> {
        Some(self.updates.len())
    }

    fn net_len_hint(&self) -> Option<usize> {
        Some(self.inserts.saturating_sub(self.deletes))
    }

    fn for_each_update(&self, f: &mut dyn FnMut(SignedEdge)) {
        for &u in &self.updates {
            f(u);
        }
    }

    /// Zero-copy override: batches are sub-slices of the stored updates.
    fn for_each_update_batch(&self, batch: usize, f: &mut dyn FnMut(&[SignedEdge])) {
        for chunk in self.updates.chunks(batch.max(1)) {
            f(chunk);
        }
    }
}

/// View of an insertion-only [`EdgeStream`] as a dynamic stream whose
/// every update is an [`Insert`](UpdateKind::Insert).
///
/// This is the bridge that lets the dynamic algorithms run on every
/// existing workload: `dynamic(InsertOnly(s))` must agree with the
/// insertion-only pipeline on `s` — the baseline identity the property
/// tests pin down.
pub struct InsertOnly<'a> {
    inner: &'a dyn EdgeStream,
}

impl<'a> InsertOnly<'a> {
    /// Wrap an insertion-only stream.
    pub fn new(inner: &'a dyn EdgeStream) -> Self {
        InsertOnly { inner }
    }
}

impl DynamicEdgeStream for InsertOnly<'_> {
    fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }

    fn update_len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn net_len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn for_each_update(&self, f: &mut dyn FnMut(SignedEdge)) {
        self.inner.for_each(&mut |e| f(SignedEdge::insert(e)));
    }
}

/// A strict-turnstile contract violation, reported by
/// [`validate_turnstile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TurnstileViolation {
    /// Zero-based position of the offending update in the stream.
    pub position: usize,
    /// The offending update.
    pub update: SignedEdge,
}

impl std::fmt::Display for TurnstileViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.update.kind {
            UpdateKind::Insert => write!(
                f,
                "update {}: insert of already-present edge {:?}",
                self.position, self.update.edge
            ),
            UpdateKind::Delete => write!(
                f,
                "update {}: delete of absent edge {:?}",
                self.position, self.update.edge
            ),
        }
    }
}

/// Check the strict-turnstile contract: every delete removes a present
/// edge, every insert adds an absent one. `O(|updates|)` harness-side
/// memory — this is a validation tool, not something an algorithm may
/// call.
pub fn validate_turnstile(stream: &dyn DynamicEdgeStream) -> Result<(), TurnstileViolation> {
    let mut present: FxHashMap<(u32, u64), bool> = FxHashMap::default();
    let mut violation = None;
    let mut pos = 0usize;
    stream.for_each_update(&mut |u| {
        if violation.is_some() {
            return;
        }
        let key = (u.edge.set.0, u.edge.element.0);
        let slot = present.entry(key).or_insert(false);
        let ok = match u.kind {
            UpdateKind::Insert => !*slot,
            UpdateKind::Delete => *slot,
        };
        if ok {
            *slot = u.kind == UpdateKind::Insert;
        } else {
            violation = Some(TurnstileViolation {
                position: pos,
                update: u,
            });
        }
        pos += 1;
    });
    match violation {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

/// The surviving edge set of a dynamic stream: edges whose net
/// multiplicity is 1 after the final update, ordered by the position of
/// their **last** insertion. This is the ground truth every dynamic
/// algorithm is judged against (harness/test helper — a streaming
/// algorithm doing this would be cheating).
pub fn surviving_edges(stream: &dyn DynamicEdgeStream) -> Vec<Edge> {
    // count and last-insert position per edge.
    let mut state: FxHashMap<(u32, u64), (i64, usize)> = FxHashMap::default();
    let mut pos = 0usize;
    stream.for_each_update(&mut |u| {
        let entry = state
            .entry((u.edge.set.0, u.edge.element.0))
            .or_insert((0, 0));
        entry.0 += u.sign();
        if u.kind == UpdateKind::Insert {
            entry.1 = pos;
        }
        pos += 1;
    });
    let mut alive: Vec<(usize, Edge)> = state
        .into_iter()
        .filter(|&(_, (count, _))| count > 0)
        .map(|((s, e), (_, at))| (at, Edge::new(s, e)))
        .collect();
    alive.sort_unstable();
    alive.into_iter().map(|(_, e)| e).collect()
}

/// [`surviving_edges`] packaged as an insertion-only [`VecStream`] — the
/// input for "what would the insertion-only pipeline have done on the
/// final graph" comparisons.
pub fn surviving_stream(stream: &dyn DynamicEdgeStream) -> VecStream {
    VecStream::new(stream.num_sets(), surviving_edges(stream))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(s: u32, el: u64) -> Edge {
        Edge::new(s, el)
    }

    fn sample() -> VecDynamicStream {
        VecDynamicStream::new(
            3,
            vec![
                SignedEdge::insert(e(0, 1)),
                SignedEdge::insert(e(1, 1)),
                SignedEdge::insert(e(0, 2)),
                SignedEdge::delete(e(1, 1)),
                SignedEdge::insert(e(2, 9)),
                SignedEdge::delete(e(0, 2)),
                SignedEdge::insert(e(0, 2)),
            ],
        )
    }

    #[test]
    fn hints_report_events_and_net_separately() {
        let s = sample();
        assert_eq!(s.update_len_hint(), Some(7));
        assert_eq!(s.net_len_hint(), Some(3)); // 5 inserts − 2 deletes
        assert_eq!(s.num_inserts(), 5);
        assert_eq!(s.num_deletes(), 2);
    }

    #[test]
    fn net_hint_saturates_on_malformed_streams() {
        let s = VecDynamicStream::new(1, vec![SignedEdge::delete(e(0, 1))]);
        assert_eq!(s.net_len_hint(), Some(0));
    }

    #[test]
    fn surviving_edges_net_out_deletions() {
        let survivors = surviving_edges(&sample());
        assert_eq!(survivors, vec![e(0, 1), e(2, 9), e(0, 2)]);
    }

    #[test]
    fn reinsertion_after_delete_survives_in_last_insert_order() {
        // (0,2) was deleted and re-inserted last — it must appear, and at
        // its re-insertion position.
        let survivors = surviving_edges(&sample());
        assert_eq!(survivors.last(), Some(&e(0, 2)));
    }

    #[test]
    fn turnstile_accepts_well_formed_streams() {
        assert!(validate_turnstile(&sample()).is_ok());
    }

    #[test]
    fn turnstile_rejects_delete_of_absent_edge() {
        let s = VecDynamicStream::new(
            2,
            vec![SignedEdge::insert(e(0, 1)), SignedEdge::delete(e(0, 2))],
        );
        let v = validate_turnstile(&s).unwrap_err();
        assert_eq!(v.position, 1);
        assert_eq!(v.update.kind, UpdateKind::Delete);
        assert!(v.to_string().contains("absent"));
    }

    #[test]
    fn turnstile_rejects_duplicate_insert() {
        let s = VecDynamicStream::new(
            2,
            vec![SignedEdge::insert(e(0, 1)), SignedEdge::insert(e(0, 1))],
        );
        let v = validate_turnstile(&s).unwrap_err();
        assert_eq!(v.position, 1);
        assert!(v.to_string().contains("already-present"));
    }

    #[test]
    fn insert_only_adapter_is_the_identity_embedding() {
        let base = VecStream::new(2, vec![e(0, 1), e(1, 2), e(0, 3)]);
        let dynamic = InsertOnly::new(&base);
        assert_eq!(dynamic.num_sets(), 2);
        assert_eq!(dynamic.update_len_hint(), Some(3));
        assert_eq!(dynamic.net_len_hint(), Some(3));
        let mut edges = Vec::new();
        dynamic.for_each_update(&mut |u| {
            assert_eq!(u.kind, UpdateKind::Insert);
            assert_eq!(u.sign(), 1);
            edges.push(u.edge);
        });
        assert_eq!(edges, base.edges());
        assert_eq!(surviving_edges(&dynamic), base.edges());
    }

    #[test]
    fn batched_replay_equals_per_update_replay() {
        let s = sample();
        let mut want = Vec::new();
        s.for_each_update(&mut |u| want.push(u));
        for batch in [1usize, 2, 3, 100] {
            let mut got = Vec::new();
            s.for_each_update_batch(batch, &mut |chunk| got.extend_from_slice(chunk));
            assert_eq!(got, want, "batch={batch}");
        }
    }

    #[test]
    fn default_batching_on_trait_object_matches() {
        // Exercise the trait's default for_each_update_batch (InsertOnly
        // does not override it).
        let base = VecStream::new(2, (0..23u64).map(|i| e((i % 2) as u32, i)).collect());
        let dynamic = InsertOnly::new(&base);
        let mut got = Vec::new();
        dynamic.for_each_update_batch(4, &mut |chunk| got.extend_from_slice(chunk));
        assert_eq!(got.len(), 23);
        assert!(got.iter().all(|u| u.kind == UpdateKind::Insert));
    }
}
