//! Deletion workloads: signed update streams for the dynamic pipeline.
//!
//! Three generator families, covering the deletion patterns the dynamic
//! literature cares about (McGregor–Vu arXiv:1610.06199 §5;
//! Chakrabarti–McGregor–Wirth arXiv:2403.14087):
//!
//! * [`churn_workload`] — random interleaved churn: a fraction of edges
//!   is deleted at random points after insertion, and half of the
//!   churned edges *bounce* (are re-inserted later), exercising the
//!   delete-then-reinsert path;
//! * [`sliding_window_workload`] — expiry semantics: edges arrive in
//!   waves and every wave is deleted once it falls out of a sliding
//!   window, the classic timestamp-expiry shape;
//! * [`adversarial_insert_delete`] — an adversary inflates decoy sets
//!   with transient mass: mid-stream the decoys look optimal, but every
//!   inflating edge is deleted before the end, so any algorithm that
//!   commits to the prefix (e.g. an insertion-only sketch that evicted
//!   the golden sets' elements) is wrong on the surviving graph. The
//!   surviving instance is a planted k-cover with known optimum.
//!
//! Every generator is seed-deterministic, emits a stream satisfying the
//! strict-turnstile contract of
//! [`coverage_stream::dynamic`] (tested), and returns the **surviving**
//! instance alongside the update stream so experiments can compare the
//! dynamic pipeline against insertion-only ground truth without
//! re-deriving it.

use coverage_core::{CoverageInstance, Edge, InstanceBuilder};
use coverage_hash::SplitMix64;
use coverage_stream::{SignedEdge, VecDynamicStream};

use crate::planted::{planted_k_cover, PlantedInstance};

/// A dynamic workload: the signed update stream plus the surviving
/// (post-deletion) instance it nets out to.
#[derive(Clone, Debug)]
pub struct DynamicWorkload {
    /// The signed update stream (inserts and deletes, interleaved).
    pub stream: VecDynamicStream,
    /// The instance the stream survives to — the ground truth a dynamic
    /// algorithm is judged against.
    pub surviving: CoverageInstance,
}

/// A dynamic workload whose surviving instance has a *planted* optimum.
#[derive(Clone, Debug)]
pub struct PlantedDynamicWorkload {
    /// The signed update stream.
    pub stream: VecDynamicStream,
    /// The surviving instance with its construction-time ground truth.
    pub planted: PlantedInstance,
}

/// Timeline event used to interleave updates deterministically.
struct Event {
    time: u64,
    seq: usize,
    update: SignedEdge,
}

fn into_stream(num_sets: usize, mut events: Vec<Event>) -> VecDynamicStream {
    events.sort_by_key(|e| (e.time, e.seq));
    VecDynamicStream::new(num_sets, events.into_iter().map(|e| e.update).collect())
}

/// Random interleaved churn over `inst`'s edges.
///
/// Each edge draws its fate from `seed`: with probability
/// `churn/2` it is inserted, deleted, and **re-inserted** (it survives);
/// with probability `churn/2` it is inserted and deleted for good (it
/// does not); otherwise it is simply inserted. Event times are drawn
/// uniformly and the phases of one edge are ordered, so deletions are
/// scattered through the whole stream rather than trailing it.
pub fn churn_workload(inst: &CoverageInstance, churn: f64, seed: u64) -> DynamicWorkload {
    assert!((0.0..=1.0).contains(&churn), "churn must lie in [0,1]");
    let mut rng = SplitMix64::new(seed ^ 0xC4C4_0123);
    let mut events = Vec::new();
    let mut survivors = InstanceBuilder::new(inst.num_sets());
    let mut seq = 0usize;
    for edge in inst.edges() {
        let fate = rng.next_f64();
        let mut times = [rng.next_u64(), rng.next_u64(), rng.next_u64()];
        times.sort_unstable();
        let mut push = |time: u64, seq: &mut usize, update: SignedEdge| {
            events.push(Event {
                time,
                seq: *seq,
                update,
            });
            *seq += 1;
        };
        if fate < churn / 2.0 {
            // Bounce: insert → delete → re-insert; survives.
            push(times[0], &mut seq, SignedEdge::insert(edge));
            push(times[1], &mut seq, SignedEdge::delete(edge));
            push(times[2], &mut seq, SignedEdge::insert(edge));
            survivors.add_edge(edge);
        } else if fate < churn {
            // Churned out: insert → delete; gone.
            push(times[0], &mut seq, SignedEdge::insert(edge));
            push(times[1], &mut seq, SignedEdge::delete(edge));
        } else {
            push(times[0], &mut seq, SignedEdge::insert(edge));
            survivors.add_edge(edge);
        }
    }
    DynamicWorkload {
        stream: into_stream(inst.num_sets(), events),
        surviving: survivors.build(),
    }
}

/// Sliding-window expiry over `inst`'s edges.
///
/// Edges are assigned uniformly to `waves` arrival waves. Wave `w` is
/// inserted at step `w` and deleted at step `w + window` (if that step
/// exists), so at the end exactly the **last `window` waves** survive —
/// the timestamp-expiry semantics of windowed monitoring pipelines.
pub fn sliding_window_workload(
    inst: &CoverageInstance,
    waves: usize,
    window: usize,
    seed: u64,
) -> DynamicWorkload {
    assert!(waves >= 1, "need at least one wave");
    assert!(window >= 1, "need a window of at least one wave");
    let mut rng = SplitMix64::new(seed ^ 0x51D3_77AB);
    let mut wave_edges: Vec<Vec<Edge>> = vec![Vec::new(); waves];
    for edge in inst.edges() {
        wave_edges[rng.next_below(waves as u64) as usize].push(edge);
    }
    let mut updates = Vec::new();
    let mut survivors = InstanceBuilder::new(inst.num_sets());
    for step in 0..waves {
        for &e in &wave_edges[step] {
            updates.push(SignedEdge::insert(e));
        }
        if let Some(expired) = step.checked_sub(window) {
            for &e in &wave_edges[expired] {
                updates.push(SignedEdge::delete(e));
            }
        }
    }
    for wave in wave_edges.iter().skip(waves.saturating_sub(window)) {
        for &e in wave {
            survivors.add_edge(e);
        }
    }
    DynamicWorkload {
        stream: VecDynamicStream::new(inst.num_sets(), updates),
        surviving: survivors.build(),
    }
}

/// Adversarial insert-then-delete: transient mass that makes the stream
/// prefix maximally misleading.
///
/// The surviving instance is exactly [`planted_k_cover`]`(n, m, k,
/// decoy_size, seed)` — golden sets partition the universe, decoys are
/// small. The stream, however, first inserts for every decoy set an
/// *inflation block* of `m / k` fresh elements (universe `m..2m`), so
/// that mid-stream every decoy looks as large as a golden set; the
/// entire inflation is deleted again before the stream ends. An
/// insertion-only sketch that spent its budget (and its eviction
/// decisions) on the inflated prefix answers for the wrong graph; the
/// dynamic sketch nets the inflation away exactly.
pub fn adversarial_insert_delete(
    n: usize,
    m: u64,
    k: usize,
    decoy_size: usize,
    seed: u64,
) -> PlantedDynamicWorkload {
    let planted = planted_k_cover(n, m, k, decoy_size, seed);
    let block = (m / k as u64).max(1);
    let mut rng = SplitMix64::new(seed ^ 0xADE1_E7E5);
    let mut updates = Vec::new();
    // Phase 1: inflate every decoy with a fresh block (elements m..2m so
    // inflation never collides with real edges).
    let mut inflation: Vec<Edge> = Vec::new();
    for s in k as u32..n as u32 {
        let lo = m + ((s as u64).wrapping_mul(0x9E37_79B9) % m.max(1));
        for i in 0..block {
            let elem = m + (lo + i) % m.max(1);
            inflation.push(Edge::new(s, elem));
        }
    }
    inflation.sort_unstable();
    inflation.dedup();
    for &e in &inflation {
        updates.push(SignedEdge::insert(e));
    }
    // Phase 2: the real (surviving) edges, in a seed-shuffled order.
    let mut real: Vec<Edge> = planted.instance.edges().collect();
    // Fisher–Yates with the local rng.
    for i in (1..real.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        real.swap(i, j);
    }
    for &e in &real {
        updates.push(SignedEdge::insert(e));
    }
    // Phase 3: the adversary retracts the inflation, largest-last.
    for &e in inflation.iter().rev() {
        updates.push(SignedEdge::delete(e));
    }
    PlantedDynamicWorkload {
        stream: VecDynamicStream::new(n, updates),
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::uniform_instance;
    use coverage_core::SetId;
    use coverage_stream::{surviving_edges, validate_turnstile};

    fn edge_set(edges: impl IntoIterator<Item = Edge>) -> std::collections::BTreeSet<(u32, u64)> {
        edges.into_iter().map(|e| (e.set.0, e.element.0)).collect()
    }

    #[test]
    fn churn_is_turnstile_and_nets_to_surviving() {
        let inst = uniform_instance(10, 500, 40, 3);
        let w = churn_workload(&inst, 0.5, 7);
        assert!(validate_turnstile(&w.stream).is_ok());
        assert_eq!(
            edge_set(surviving_edges(&w.stream)),
            edge_set(w.surviving.edges()),
            "stream must net out to the declared surviving instance"
        );
        // Roughly half the edges should survive (churn/2 bounce back).
        let total = inst.num_edges();
        let alive = w.surviving.num_edges();
        assert!(alive < total, "some churned edges must be gone");
        assert!(
            (alive as f64) > 0.55 * total as f64,
            "bounce + untouched should keep well over half ({alive}/{total})"
        );
        // Deletes are interleaved, not trailing: some delete must occur
        // in the first half of the stream.
        let updates = w.stream.updates();
        assert!(updates[..updates.len() / 2]
            .iter()
            .any(|u| u.kind == coverage_stream::UpdateKind::Delete));
    }

    #[test]
    fn churn_zero_is_insert_only() {
        let inst = uniform_instance(5, 200, 20, 1);
        let w = churn_workload(&inst, 0.0, 9);
        assert_eq!(w.stream.num_deletes(), 0);
        assert_eq!(w.surviving.num_edges(), inst.num_edges());
    }

    #[test]
    fn sliding_window_keeps_only_the_window() {
        let inst = uniform_instance(8, 400, 50, 5);
        let w = sliding_window_workload(&inst, 5, 2, 11);
        assert!(validate_turnstile(&w.stream).is_ok());
        assert_eq!(
            edge_set(surviving_edges(&w.stream)),
            edge_set(w.surviving.edges())
        );
        // 2-of-5 waves survive ≈ 40% of edges (binomial noise allowed).
        let frac = w.surviving.num_edges() as f64 / inst.num_edges() as f64;
        assert!((0.25..0.55).contains(&frac), "window fraction {frac}");
    }

    #[test]
    fn sliding_window_full_window_deletes_nothing() {
        let inst = uniform_instance(4, 100, 10, 2);
        let w = sliding_window_workload(&inst, 3, 3, 1);
        assert_eq!(w.stream.num_deletes(), 0);
        assert_eq!(w.surviving.num_edges(), inst.num_edges());
    }

    #[test]
    fn adversarial_nets_to_planted_instance() {
        let w = adversarial_insert_delete(20, 1_000, 4, 30, 13);
        assert!(validate_turnstile(&w.stream).is_ok());
        assert_eq!(
            edge_set(surviving_edges(&w.stream)),
            edge_set(w.planted.instance.edges())
        );
        assert_eq!(w.planted.optimal_value, 1_000);
        assert_eq!(
            w.planted.instance.coverage(&w.planted.optimal_family),
            1_000
        );
    }

    #[test]
    fn adversarial_prefix_inflates_decoys() {
        // Mid-stream (before any delete) each decoy must carry a full
        // inflation block — the prefix graph ranks decoys like golden
        // sets even though none of that mass survives.
        let (n, m, k) = (12usize, 600u64, 3usize);
        let w = adversarial_insert_delete(n, m, k, 20, 5);
        let first_delete = w
            .stream
            .updates()
            .iter()
            .position(|u| u.kind == coverage_stream::UpdateKind::Delete)
            .expect("adversary must delete");
        let mut prefix = InstanceBuilder::new(n);
        for u in &w.stream.updates()[..first_delete] {
            prefix.add_edge(u.edge);
        }
        let prefix = prefix.build();
        let block = (m / k as u64) as usize;
        for s in k as u32..n as u32 {
            let size = prefix.coverage(&[SetId(s)]);
            assert!(
                size >= block,
                "decoy {s} holds {size} < inflation block {block} mid-stream"
            );
            // …but survives with only its small decoy edges.
            let final_size = w.planted.instance.coverage(&[SetId(s)]);
            assert!(final_size <= 20, "decoy {s} survived too large");
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let inst = uniform_instance(6, 300, 30, 4);
        let a = churn_workload(&inst, 0.4, 21);
        let b = churn_workload(&inst, 0.4, 21);
        assert_eq!(a.stream.updates(), b.stream.updates());
        let c = churn_workload(&inst, 0.4, 22);
        assert_ne!(a.stream.updates(), c.stream.updates());
        let d1 = adversarial_insert_delete(10, 200, 2, 10, 3);
        let d2 = adversarial_insert_delete(10, 200, 2, 10, 3);
        assert_eq!(d1.stream.updates(), d2.stream.updates());
    }

    #[test]
    #[should_panic(expected = "churn must lie in [0,1]")]
    fn churn_rejects_bad_fraction() {
        let inst = uniform_instance(2, 50, 5, 1);
        churn_workload(&inst, 1.5, 0);
    }
}
