//! Preferential-attachment (Barabási–Albert style) bipartite workloads.
//!
//! Web-graph-like inputs: each new set attaches `attach` edges, each edge
//! choosing its element either uniformly (probability `1−q`) or by copying
//! the element endpoint of a previously placed edge (probability `q`) —
//! the classic rich-get-richer recipe producing power-law element degrees
//! without any explicit popularity table.

use coverage_core::{CoverageInstance, Edge, InstanceBuilder};
use coverage_hash::SplitMix64;

/// Generate a preferential-attachment bipartite instance.
///
/// * `n` sets, element universe `0..m` for fresh draws;
/// * each set places `attach` edges;
/// * `copy_prob ∈ [0,1]` is the probability an edge copies the element of
///   an earlier edge instead of drawing uniformly.
pub fn preferential_attachment(
    n: usize,
    m: u64,
    attach: usize,
    copy_prob: f64,
    seed: u64,
) -> CoverageInstance {
    assert!((0.0..=1.0).contains(&copy_prob));
    let mut rng = SplitMix64::new(seed ^ 0x00BA_0BAB);
    let mut b = InstanceBuilder::new(n);
    let mut placed: Vec<u64> = Vec::with_capacity(n * attach);
    for s in 0..n as u32 {
        for _ in 0..attach {
            let el = if !placed.is_empty() && rng.next_f64() < copy_prob {
                placed[rng.next_below(placed.len() as u64) as usize]
            } else {
                rng.next_below(m)
            };
            placed.push(el);
            b.add_edge(Edge::new(s, el));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_respected() {
        let g = preferential_attachment(40, 5_000, 25, 0.5, 1);
        assert_eq!(g.num_sets(), 40);
        assert!(g.num_edges() <= 1000);
        assert!(g.num_elements() <= 1000);
    }

    #[test]
    fn copying_produces_skew() {
        let skewed = preferential_attachment(60, 100_000, 30, 0.8, 2);
        let flat = preferential_attachment(60, 100_000, 30, 0.0, 2);
        let max_skew = skewed.element_degrees().into_iter().max().unwrap();
        let max_flat = flat.element_degrees().into_iter().max().unwrap();
        assert!(
            max_skew > max_flat,
            "copying should concentrate degree: {max_skew} vs {max_flat}"
        );
    }

    #[test]
    fn zero_copy_is_uniformish() {
        let g = preferential_attachment(30, 1_000_000, 20, 0.0, 3);
        // With a huge universe and no copying, collisions are rare.
        assert!(g.num_elements() > 550, "got {}", g.num_elements());
    }

    #[test]
    fn deterministic() {
        let a = preferential_attachment(10, 100, 5, 0.5, 7);
        let b = preferential_attachment(10, 100, 5, 0.5, 7);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
