//! Domain-flavored scenario generators used by the examples.
//!
//! Thin wrappers over the statistical generators that (a) fix parameters
//! to something story-shaped and (b) name the parts: the paper's
//! motivating applications are data summarization and web/blog coverage
//! (Saha & Getoor's "multi-topic blog-watch" is citation `[44]`).

use coverage_core::CoverageInstance;

use crate::planted::planted_set_cover;
use crate::zipf::zipf_instance;

/// Blog-watch (k-cover): `n_blogs` blogs each covering a Zipf-popular set
/// of `n_topics` topics; pick `k` blogs to follow to maximize topic
/// coverage. Returns the instance (sets = blogs, elements = topics).
pub fn blog_watch(n_blogs: usize, n_topics: u64, seed: u64) -> CoverageInstance {
    zipf_instance(
        n_blogs,
        n_topics,
        0.7,  // blog productivity decays
        1.05, // topic popularity is heavy-tailed
        (n_topics / 4).max(8) as usize,
        seed,
    )
}

/// Document summarization (k-cover): documents cover vocabulary terms;
/// pick `k` documents maximizing vocabulary coverage. Same statistical
/// family as [`blog_watch`] with a flatter size profile.
pub fn summarization(n_docs: usize, vocab: u64, seed: u64) -> CoverageInstance {
    zipf_instance(n_docs, vocab, 0.3, 0.9, (vocab / 8).max(8) as usize, seed)
}

/// Network monitoring (set cover with outliers): `n_probes` candidate
/// monitor placements must observe `m_links` links; the planted optimum
/// needs exactly `k_star` monitors. Returns `(instance, k_star)`.
pub fn network_monitoring(
    n_probes: usize,
    m_links: u64,
    k_star: usize,
    seed: u64,
) -> (CoverageInstance, usize) {
    let p = planted_set_cover(
        n_probes,
        m_links,
        k_star,
        (m_links / 10).max(4) as usize,
        seed,
    );
    (p.instance, p.optimal_value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blog_watch_shape() {
        let g = blog_watch(40, 2_000, 1);
        assert_eq!(g.num_sets(), 40);
        assert!(g.num_elements() > 100);
    }

    #[test]
    fn summarization_shape() {
        let g = summarization(30, 1_000, 2);
        assert_eq!(g.num_sets(), 30);
        assert!(g.num_edges() > 100);
    }

    #[test]
    fn monitoring_is_coverable_with_k_star() {
        let (g, k) = network_monitoring(25, 600, 6, 3);
        assert_eq!(k, 6);
        let golden: Vec<coverage_core::SetId> = (0..6u32).map(coverage_core::SetId).collect();
        assert!(g.is_cover(&golden));
    }
}
