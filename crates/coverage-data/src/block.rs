//! Community block-model bipartite generator.
//!
//! Real set systems (the web/blog data motivating the paper) are not
//! uniform: sets cluster into *communities* that share elements heavily
//! within and sparsely across. This generator plants `c` communities,
//! each with its own element block; every set draws most of its elements
//! from its home block and a `mix` fraction from the global universe.
//!
//! Why it matters here: community structure concentrates element degrees
//! (hub elements inside a block are covered by most of the block's sets),
//! which is exactly the regime Lemma 2.4's degree cap is designed for —
//! the `exp_ablation_degcap` experiment uses these instances. They are
//! also the natural testbed for the distributed runner (communities ≈
//! shards).

use coverage_core::{CoverageInstance, Edge, InstanceBuilder};
use coverage_hash::SplitMix64;

/// Parameters of a block-model instance.
#[derive(Clone, Copy, Debug)]
pub struct BlockModel {
    /// Number of communities `c`.
    pub communities: usize,
    /// Sets per community.
    pub sets_per_community: usize,
    /// Elements per community block.
    pub elements_per_community: u64,
    /// Edges drawn per set.
    pub degree: usize,
    /// Fraction of a set's edges drawn from the whole universe instead of
    /// its home block (`0.0` = perfectly separable communities).
    pub mix: f64,
}

impl BlockModel {
    /// Total number of sets.
    pub fn num_sets(&self) -> usize {
        self.communities * self.sets_per_community
    }

    /// Total number of elements in the universe.
    pub fn num_elements(&self) -> u64 {
        self.communities as u64 * self.elements_per_community
    }

    /// Community of set `s`.
    pub fn community_of_set(&self, s: usize) -> usize {
        s / self.sets_per_community
    }

    /// Community owning element `e`.
    pub fn community_of_element(&self, e: u64) -> usize {
        (e / self.elements_per_community) as usize
    }

    /// Materialize the instance.
    pub fn generate(&self, seed: u64) -> CoverageInstance {
        assert!(self.communities >= 1);
        assert!((0.0..=1.0).contains(&self.mix), "mix must be in [0,1]");
        let mut rng = SplitMix64::new(seed);
        let mut b = InstanceBuilder::new(self.num_sets());
        let m = self.num_elements();
        let block = self.elements_per_community;
        for s in 0..self.num_sets() {
            let home = self.community_of_set(s) as u64;
            for _ in 0..self.degree {
                let global = rng.next_f64() < self.mix;
                let e = if global {
                    rng.next_below(m)
                } else {
                    home * block + rng.next_below(block)
                };
                b.add_edge(Edge::new(s as u32, e));
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::SetId;

    fn model() -> BlockModel {
        BlockModel {
            communities: 4,
            sets_per_community: 10,
            elements_per_community: 500,
            degree: 60,
            mix: 0.1,
        }
    }

    #[test]
    fn dimensions_are_as_declared() {
        let m = model();
        let g = m.generate(1);
        assert_eq!(g.num_sets(), 40);
        assert!(g.num_elements() <= 2_000);
        // Each set has at most `degree` distinct elements.
        for s in g.set_ids() {
            assert!(g.set_size(s) <= 60);
            assert!(g.set_size(s) > 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let m = model();
        let a = m.generate(7);
        let b = m.generate(7);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = m.generate(8);
        assert_ne!(
            a.edges().map(|e| e.element.0).sum::<u64>(),
            c.edges().map(|e| e.element.0).sum::<u64>()
        );
    }

    #[test]
    fn sets_stay_mostly_in_their_block() {
        let m = model();
        let g = m.generate(3);
        for s in 0..m.num_sets() {
            let home = m.community_of_set(s);
            let total = g.set_size(SetId(s as u32));
            let inside = g
                .set_elements(SetId(s as u32))
                .filter(|e| m.community_of_element(e.0) == home)
                .count();
            assert!(
                inside as f64 >= 0.7 * total as f64,
                "set {s}: only {inside}/{total} edges in home block"
            );
        }
    }

    #[test]
    fn zero_mix_is_perfectly_separable() {
        let m = BlockModel {
            mix: 0.0,
            ..model()
        };
        let g = m.generate(5);
        for s in 0..m.num_sets() {
            let home = m.community_of_set(s);
            for e in g.set_elements(SetId(s as u32)) {
                assert_eq!(m.community_of_element(e.0), home);
            }
        }
    }

    #[test]
    fn full_mix_spreads_over_universe() {
        let m = BlockModel {
            mix: 1.0,
            communities: 4,
            sets_per_community: 5,
            elements_per_community: 250,
            degree: 200,
        };
        let g = m.generate(9);
        // With mix=1 each set should touch several communities.
        for s in 0..m.num_sets() {
            let mut seen = [false; 4];
            for e in g.set_elements(SetId(s as u32)) {
                seen[m.community_of_element(e.0)] = true;
            }
            assert!(seen.iter().filter(|&&x| x).count() >= 3, "set {s}");
        }
    }

    #[test]
    #[should_panic(expected = "mix must be in [0,1]")]
    fn invalid_mix_rejected() {
        BlockModel {
            mix: 1.5,
            ..model()
        }
        .generate(1);
    }
}
