//! Heavy-tailed (Zipf) workloads.
//!
//! Real coverage data — the blog/topic and web-coverage applications the
//! paper's introduction cites — has power-law set sizes and element
//! popularities. Heavy elements are exactly what the sketch's degree cap
//! (Lemma 2.4) exists for, so the ablation A1 runs on these instances.
//!
//! `rand` has no Zipf distribution in our dependency set, so we implement
//! inverse-CDF sampling over precomputed cumulative weights (exact, `O(m)`
//! setup, `O(log m)` per draw).

use coverage_core::{CoverageInstance, Edge, InstanceBuilder};
use coverage_hash::SplitMix64;

/// Exact Zipf(θ) sampler over ranks `0..m` (rank `r` has weight
/// `1/(r+1)^θ`).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build the sampler for `m` ranks with exponent `theta ≥ 0`
    /// (`theta = 0` is uniform).
    pub fn new(m: usize, theta: f64) -> Self {
        assert!(m > 0, "sampler needs a non-empty domain");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cumulative = Vec::with_capacity(m);
        let mut acc = 0.0f64;
        for r in 0..m {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Total weight (normalization constant).
    pub fn total(&self) -> f64 {
        *self.cumulative.last().unwrap()
    }

    /// Draw a rank using the given RNG.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64() * self.total();
        // First index with cumulative ≥ u.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// A Zipf workload: set sizes follow Zipf(`theta_sets`) scaled into
/// `[min_size, max_size]`, and each membership edge picks its element by
/// Zipf(`theta_elems`) popularity over `0..m`.
pub fn zipf_instance(
    n: usize,
    m: u64,
    theta_sets: f64,
    theta_elems: f64,
    max_size: usize,
    seed: u64,
) -> CoverageInstance {
    let mut rng = SplitMix64::new(seed ^ 0x5A1F_0D17);
    let elem_sampler = ZipfSampler::new(m as usize, theta_elems);
    let mut b = InstanceBuilder::new(n);
    for s in 0..n as u32 {
        // Set size: Zipf-decaying in the set's rank.
        let size = ((max_size as f64) / ((s + 1) as f64).powf(theta_sets))
            .ceil()
            .max(1.0) as usize;
        for _ in 0..size {
            let el = elem_sampler.sample(&mut rng) as u64;
            b.add_edge(Edge::new(s, el));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_uniform_when_theta_zero() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = SplitMix64::new(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "uniform bucket {c}");
        }
    }

    #[test]
    fn sampler_skews_with_theta() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = SplitMix64::new(2);
        let mut head = 0;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With θ=1.2 the top-10 ranks carry a large constant fraction.
        assert!(head as f64 / total as f64 > 0.4, "head mass {head}/{total}");
    }

    #[test]
    fn instance_sizes_decay() {
        let g = zipf_instance(50, 10_000, 0.8, 1.0, 400, 3);
        assert_eq!(g.num_sets(), 50);
        let s0 = g.set_size(coverage_core::SetId(0));
        let s49 = g.set_size(coverage_core::SetId(49));
        assert!(s0 > s49, "sizes must decay: {s0} vs {s49}");
    }

    #[test]
    fn heavy_elements_exist() {
        let g = zipf_instance(60, 5_000, 0.5, 1.1, 300, 4);
        let max_deg = g.element_degrees().into_iter().max().unwrap();
        assert!(
            max_deg > 10,
            "expected a heavy element, max degree {max_deg}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty domain")]
    fn rejects_empty_domain() {
        ZipfSampler::new(0, 1.0);
    }
}
