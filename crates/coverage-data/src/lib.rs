//! # coverage-data
//!
//! Synthetic workload generators for the streaming-coverage experiments.
//!
//! The paper evaluates on the regime "number of elements significantly
//! larger than the number of sets" (footnote 2) with large sets — the
//! regime where `Õ(n)` space beats `Õ(m)`. These generators cover it:
//!
//! * [`uniform`] — Erdős–Rényi-style bipartite graphs (each set draws a
//!   random subset of the universe), materialized or streamed;
//! * [`zipf`] — heavy-tailed set sizes and element popularities (the
//!   shape of real web/blog data the paper's motivation cites);
//! * [`planted`] — instances with *known* optima, so experiments can
//!   report measured approximation ratios without exact solvers;
//! * [`ba`] — preferential-attachment bipartite graphs;
//! * [`churn`] — **deletion workloads** for the dynamic (insert/delete)
//!   pipeline: random churn, sliding-window expiry, and adversarial
//!   insert-then-delete streams, each paired with its exact surviving
//!   instance;
//! * [`domains`] — thin scenario wrappers (blog-watch, document
//!   summarization, network monitoring) used by the examples.
//!
//! Every generator is seed-deterministic: the same seed yields the same
//! instance, and streaming variants regenerate identical edge sequences
//! on every pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod block;
pub mod churn;
pub mod domains;
pub mod hard;
pub mod io;
pub mod planted;
pub mod uniform;
pub mod zipf;

pub use ba::preferential_attachment;
pub use block::BlockModel;
pub use churn::{
    adversarial_insert_delete, churn_workload, sliding_window_workload, DynamicWorkload,
    PlantedDynamicWorkload,
};
pub use hard::{disjoint_blocks, greedy_trap, GreedyTrap};
pub use io::{
    from_json, from_text, load_json, load_text, save_json, save_text, to_json, to_text,
    InstanceMeta, ParseError,
};
pub use planted::{planted_k_cover, planted_set_cover, PlantedInstance};
pub use uniform::{stream_uniform, uniform_instance};
pub use zipf::{zipf_instance, ZipfSampler};
