//! Uniform random bipartite workloads.

use coverage_core::{CoverageInstance, Edge, InstanceBuilder};
use coverage_hash::SplitMix64;
use coverage_stream::FnStream;

/// A materialized uniform instance: `n` sets, universe `0..m`, each set
/// containing `edges_per_set` elements drawn uniformly (with replacement,
/// deduplicated — actual sizes may be slightly smaller).
pub fn uniform_instance(n: usize, m: u64, edges_per_set: usize, seed: u64) -> CoverageInstance {
    let mut b = InstanceBuilder::new(n);
    let mut rng = SplitMix64::new(seed ^ 0x1CEB_00DA);
    for s in 0..n as u32 {
        for _ in 0..edges_per_set {
            b.add_edge(Edge::new(s, rng.next_below(m)));
        }
    }
    b.build()
}

/// A *streamed* uniform workload: identical distribution to
/// [`uniform_instance`], but edges are regenerated per pass in a globally
/// shuffled order (edge `i` of the conceptual matrix appears at position
/// `π(i)` for a fixed random-ish permutation) instead of being stored.
///
/// The permutation is a Feistel-style index bijection, so the stream uses
/// `O(1)` harness memory regardless of `n·edges_per_set` — this is what
/// lets experiment E2 push `m` to 10⁶ while measuring *algorithm* space.
pub fn stream_uniform(
    n: usize,
    m: u64,
    edges_per_set: usize,
    seed: u64,
) -> FnStream<impl Fn(&mut dyn FnMut(Edge))> {
    let total = (n * edges_per_set) as u64;
    let gen = move |f: &mut dyn FnMut(Edge)| {
        for i in 0..total {
            let j = permute_index(i, total, seed);
            let set = (j / edges_per_set as u64) as u32;
            // Element choice must be a pure function of the conceptual
            // edge index so that every pass regenerates the same edge.
            let mut rng = SplitMix64::new(seed ^ j.wrapping_mul(0x9E37_79B9));
            let el = rng.next_below(m);
            f(Edge::new(set, el));
        }
    };
    FnStream::new(n, gen).with_len_hint(total as usize)
}

/// A bijection on `0..total` built from a 4-round Feistel network over the
/// smallest power-of-two domain ≥ `total`, cycling until the image lands
/// inside the domain (cycle-walking).
fn permute_index(i: u64, total: u64, seed: u64) -> u64 {
    debug_assert!(i < total);
    let bits = 64 - (total.max(2) - 1).leading_zeros();
    let half = bits.div_ceil(2);
    let mask = (1u64 << half) - 1;
    let mut x = i;
    loop {
        // 4 Feistel rounds on (hi, lo) halves.
        let mut lo = x & mask;
        let mut hi = x >> half;
        for r in 0..4u64 {
            let fk = coverage_hash::mix64(lo ^ seed.wrapping_add(r.wrapping_mul(0x9E37)));
            let new_lo = hi ^ (fk & mask);
            hi = lo;
            lo = new_lo;
        }
        x = (hi << half) | lo;
        x &= (1u64 << (2 * half)) - 1;
        if x < total {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_stream::{materialize, EdgeStream};

    #[test]
    fn instance_shape() {
        let g = uniform_instance(20, 500, 30, 1);
        assert_eq!(g.num_sets(), 20);
        assert!(g.num_elements() <= 500);
        assert!(g.num_edges() <= 600);
        assert!(g.num_edges() > 400, "dedup losses should be mild");
    }

    #[test]
    fn instance_is_seed_deterministic() {
        let a = uniform_instance(10, 100, 10, 7);
        let b = uniform_instance(10, 100, 10, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = uniform_instance(10, 100, 10, 8);
        // With 100 possible elements and 100 draws, a collision of all
        // counts across seeds is unlikely but possible; compare edges.
        let ea: Vec<_> = a.edges().collect();
        let ec: Vec<_> = c.edges().collect();
        assert_ne!(ea, ec);
    }

    #[test]
    fn permute_index_is_bijection() {
        for total in [1u64, 2, 7, 64, 100, 1000] {
            let mut seen = vec![false; total as usize];
            for i in 0..total {
                let j = permute_index(i, total, 42);
                assert!(j < total);
                assert!(!seen[j as usize], "collision at {i}→{j} (total {total})");
                seen[j as usize] = true;
            }
        }
    }

    #[test]
    fn stream_replays_identically() {
        let s = stream_uniform(5, 50, 8, 3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        s.for_each(&mut |e| a.push(e));
        s.for_each(&mut |e| b.push(e));
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn stream_matches_distribution_of_instance() {
        // Same seed need not give the same instance as uniform_instance,
        // but the aggregate shape must match.
        let s = stream_uniform(20, 500, 30, 9);
        let g = materialize(&s);
        assert_eq!(g.num_sets(), 20);
        assert!(g.num_edges() > 400 && g.num_edges() <= 600);
    }

    #[test]
    fn stream_order_is_not_set_major() {
        // The Feistel shuffle must interleave sets (otherwise it would
        // silently be a set-arrival stream).
        let s = stream_uniform(10, 100, 20, 5);
        let mut sets = Vec::new();
        s.for_each(&mut |e| sets.push(e.set.0));
        let mut runs = 1;
        for w in sets.windows(2) {
            if w[0] != w[1] {
                runs += 1;
            }
        }
        assert!(runs > 50, "only {runs} runs — stream looks grouped");
    }
}
