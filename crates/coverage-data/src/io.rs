//! Instance persistence: save and load coverage instances.
//!
//! The paper's companion empirical work evaluates on public set-system
//! datasets; we have no network access, so experiments run on the
//! generators in this crate. Persistence closes the loop for users who
//! *do* have real data: two formats, both self-describing and
//! deterministic.
//!
//! * **Text** (`.sets`): line-oriented, one set per line —
//!   `set_id: elem elem elem …` with `#` comments — the format used by
//!   the classical max-cover benchmark collections, so real datasets can
//!   be dropped in unchanged.
//! * **JSON** (serde): the full instance plus provenance metadata; the
//!   natural interchange format for toolchains.
//!
//! Round-trip tests guarantee load ∘ save = identity on the logical
//! instance (sets, elements, edges) in both formats.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use coverage_core::{CoverageInstance, Edge, InstanceBuilder, SetId};
use serde::{Deserialize, Serialize};

/// Provenance carried by the JSON format.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct InstanceMeta {
    /// Human-readable instance name.
    pub name: String,
    /// Generator (or source) description, e.g. `"zipf(theta=1.1, seed=7)"`.
    pub source: String,
}

#[derive(Serialize, Deserialize)]
struct JsonInstance {
    meta: InstanceMeta,
    num_sets: usize,
    /// `sets[s]` = element ids of set `s`.
    sets: Vec<Vec<u64>>,
}

/// Serialize an instance (plus metadata) as a JSON string.
pub fn to_json(inst: &CoverageInstance, meta: &InstanceMeta) -> String {
    let sets: Vec<Vec<u64>> = inst
        .set_ids()
        .map(|s| inst.set_elements(s).map(|e| e.0).collect())
        .collect();
    serde_json::to_string(&JsonInstance {
        meta: meta.clone(),
        num_sets: inst.num_sets(),
        sets,
    })
    .expect("instance serialization cannot fail")
}

/// Parse an instance from [`to_json`] output.
pub fn from_json(s: &str) -> Result<(CoverageInstance, InstanceMeta), serde_json::Error> {
    let j: JsonInstance = serde_json::from_str(s)?;
    let mut b = InstanceBuilder::new(j.num_sets);
    for (s, elems) in j.sets.iter().enumerate() {
        for &e in elems {
            b.add_edge(Edge::new(s as u32, e));
        }
    }
    Ok((b.build(), j.meta))
}

/// Render an instance in the line-oriented text format.
pub fn to_text(inst: &CoverageInstance) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# coverage instance: {} sets, {} elements, {} edges",
        inst.num_sets(),
        inst.num_elements(),
        inst.num_edges()
    );
    let _ = writeln!(out, "sets {}", inst.num_sets());
    for s in inst.set_ids() {
        let _ = write!(out, "{}:", s.0);
        for e in inst.set_elements(s) {
            let _ = write!(out, " {}", e.0);
        }
        let _ = writeln!(out);
    }
    out
}

/// Errors from text-format parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed line, with 1-based line number and description.
    Syntax(usize, String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Syntax(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse the text format from any reader.
pub fn from_text(reader: impl Read) -> Result<CoverageInstance, ParseError> {
    let mut declared_sets: Option<usize> = None;
    let mut b = InstanceBuilder::new(0);
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("sets ") {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| ParseError::Syntax(lineno, format!("bad set count {rest:?}")))?;
            declared_sets = Some(n);
            continue;
        }
        let (head, tail) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Syntax(lineno, "expected `set_id: elems…`".into()))?;
        let sid: u32 = head
            .trim()
            .parse()
            .map_err(|_| ParseError::Syntax(lineno, format!("bad set id {head:?}")))?;
        if let Some(n) = declared_sets {
            if sid as usize >= n {
                return Err(ParseError::Syntax(
                    lineno,
                    format!("set id {sid} out of declared range 0..{n}"),
                ));
            }
        }
        for tok in tail.split_whitespace() {
            let e: u64 = tok
                .parse()
                .map_err(|_| ParseError::Syntax(lineno, format!("bad element id {tok:?}")))?;
            b.add_edge(Edge::new(sid, e));
        }
        // Make empty sets representable: mentioning a set id with no
        // elements still grows the family.
        let _ = SetId(sid);
    }
    let mut inst = b.build();
    if let Some(n) = declared_sets {
        if inst.num_sets() < n {
            // Grow to the declared family size (trailing empty sets).
            let mut b = InstanceBuilder::new(n);
            for e in inst.edges() {
                b.add_edge(e);
            }
            inst = b.build();
        }
    }
    Ok(inst)
}

/// Save in the text format.
pub fn save_text(inst: &CoverageInstance, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = io::BufWriter::new(fs::File::create(path)?);
    f.write_all(to_text(inst).as_bytes())?;
    f.flush()
}

/// Load from the text format.
pub fn load_text(path: impl AsRef<Path>) -> Result<CoverageInstance, ParseError> {
    from_text(fs::File::open(path)?)
}

/// Save in the JSON format.
pub fn save_json(
    inst: &CoverageInstance,
    meta: &InstanceMeta,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let mut f = io::BufWriter::new(fs::File::create(path)?);
    f.write_all(to_json(inst, meta).as_bytes())?;
    f.flush()
}

/// Load from the JSON format.
pub fn load_json(path: impl AsRef<Path>) -> Result<(CoverageInstance, InstanceMeta), ParseError> {
    let mut s = String::new();
    fs::File::open(path)?.read_to_string(&mut s)?;
    from_json(&s).map_err(|e| ParseError::Syntax(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_instance;

    fn same_instance(a: &CoverageInstance, b: &CoverageInstance) -> bool {
        if a.num_sets() != b.num_sets() || a.num_edges() != b.num_edges() {
            return false;
        }
        for s in a.set_ids() {
            let mut ea: Vec<u64> = a.set_elements(s).map(|e| e.0).collect();
            let mut eb: Vec<u64> = b.set_elements(s).map(|e| e.0).collect();
            ea.sort_unstable();
            eb.sort_unstable();
            if ea != eb {
                return false;
            }
        }
        true
    }

    #[test]
    fn json_roundtrip() {
        let inst = uniform_instance(12, 300, 25, 7);
        let meta = InstanceMeta {
            name: "test".into(),
            source: "uniform(12,300,25,7)".into(),
        };
        let (back, meta2) = from_json(&to_json(&inst, &meta)).expect("valid json");
        assert!(same_instance(&inst, &back));
        assert_eq!(meta, meta2);
    }

    #[test]
    fn text_roundtrip() {
        let inst = uniform_instance(9, 150, 12, 3);
        let back = from_text(to_text(&inst).as_bytes()).expect("parses");
        assert!(same_instance(&inst, &back));
    }

    #[test]
    fn text_parses_comments_and_blanks() {
        let src = "# header\n\nsets 3\n0: 1 2 3\n\n# middle comment\n2: 9\n";
        let inst = from_text(src.as_bytes()).expect("parses");
        assert_eq!(inst.num_sets(), 3);
        assert_eq!(inst.set_size(SetId(0)), 3);
        assert_eq!(inst.set_size(SetId(1)), 0, "undeclared set stays empty");
        assert_eq!(inst.set_size(SetId(2)), 1);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(matches!(
            from_text("sets two\n".as_bytes()),
            Err(ParseError::Syntax(1, _))
        ));
        assert!(matches!(
            from_text("0 1 2\n".as_bytes()),
            Err(ParseError::Syntax(1, _))
        ));
        assert!(matches!(
            from_text("sets 1\n5: 1\n".as_bytes()),
            Err(ParseError::Syntax(2, _))
        ));
        assert!(matches!(
            from_text("0: 1 x 3\n".as_bytes()),
            Err(ParseError::Syntax(1, _))
        ));
    }

    #[test]
    fn file_roundtrip_both_formats() {
        let dir = std::env::temp_dir().join("coverage-data-io-test");
        fs::create_dir_all(&dir).unwrap();
        let inst = uniform_instance(6, 80, 10, 11);

        let tpath = dir.join("inst.sets");
        save_text(&inst, &tpath).unwrap();
        let t = load_text(&tpath).unwrap();
        assert!(same_instance(&inst, &t));

        let jpath = dir.join("inst.json");
        let meta = InstanceMeta {
            name: "file-roundtrip".into(),
            source: "uniform".into(),
        };
        save_json(&inst, &meta, &jpath).unwrap();
        let (j, m) = load_json(&jpath).unwrap();
        assert!(same_instance(&inst, &j));
        assert_eq!(m.name, "file-roundtrip");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_edges_in_text_are_merged() {
        let inst = from_text("0: 5 5 5 6\n".as_bytes()).unwrap();
        assert_eq!(inst.num_edges(), 2);
    }
}
