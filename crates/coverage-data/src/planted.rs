//! Planted instances with known optima.
//!
//! Exact solvers only reach toy sizes, so large-scale experiments measure
//! approximation ratios against *constructed* optima:
//!
//! * [`planted_k_cover`] — `k` "golden" sets partition the universe, so
//!   `Opt_k = m` exactly; the other `n−k` sets are smaller random decoys
//!   (with enough overlap to trap naive heuristics).
//! * [`planted_set_cover`] — `k*` golden sets partition the universe and
//!   every golden set owns a *private* element no decoy touches, so the
//!   minimum cover is exactly the `k*` golden sets.

use coverage_core::{CoverageInstance, Edge, InstanceBuilder, SetId};
use coverage_hash::SplitMix64;

/// A generated instance together with its construction-time ground truth.
#[derive(Clone, Debug)]
pub struct PlantedInstance {
    /// The instance itself.
    pub instance: CoverageInstance,
    /// The planted optimal family.
    pub optimal_family: Vec<SetId>,
    /// Its objective value: coverage for k-cover (`= m`), family size for
    /// set cover (`= k*`).
    pub optimal_value: usize,
}

/// Planted k-cover: `k` golden sets partition `0..m`; `n−k` decoys of size
/// `decoy_size` are sampled uniformly. `Opt_k = m`, attained only by the
/// golden family (decoys are strictly smaller than blocks when
/// `decoy_size < m/k`).
pub fn planted_k_cover(
    n: usize,
    m: u64,
    k: usize,
    decoy_size: usize,
    seed: u64,
) -> PlantedInstance {
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    assert!(m >= k as u64, "need m ≥ k so every block is non-empty");
    let mut b = InstanceBuilder::new(n);
    let block = m / k as u64;
    // Golden sets: contiguous blocks (last one takes the remainder).
    for g in 0..k as u32 {
        let lo = g as u64 * block;
        let hi = if g as usize == k - 1 { m } else { lo + block };
        for e in lo..hi {
            b.add_edge(Edge::new(g, e));
        }
    }
    // Decoys: uniform random subsets.
    let mut rng = SplitMix64::new(seed ^ 0xDEC0);
    for s in k as u32..n as u32 {
        for _ in 0..decoy_size {
            b.add_edge(Edge::new(s, rng.next_below(m)));
        }
    }
    PlantedInstance {
        instance: b.build(),
        optimal_family: (0..k as u32).map(SetId).collect(),
        optimal_value: m as usize,
    }
}

/// Planted set cover: `k*` golden sets partition `0..m`; each golden set's
/// *first* element is private (decoys avoid it), so any cover must contain
/// all `k*` golden sets and the minimum cover size is exactly `k*`.
/// Decoys (sets `k*..n`) are uniform subsets of the non-private elements.
pub fn planted_set_cover(
    n: usize,
    m: u64,
    k_star: usize,
    decoy_size: usize,
    seed: u64,
) -> PlantedInstance {
    assert!(k_star >= 1 && k_star <= n);
    let block = m / k_star as u64;
    assert!(
        block >= 2,
        "blocks must have ≥ 2 elements for private markers"
    );
    let mut b = InstanceBuilder::new(n);
    let mut private: Vec<u64> = Vec::with_capacity(k_star);
    for g in 0..k_star as u32 {
        let lo = g as u64 * block;
        let hi = if g as usize == k_star - 1 {
            m
        } else {
            lo + block
        };
        private.push(lo);
        for e in lo..hi {
            b.add_edge(Edge::new(g, e));
        }
    }
    let mut rng = SplitMix64::new(seed ^ 0x5E7C);
    for s in k_star as u32..n as u32 {
        let mut placed = 0usize;
        while placed < decoy_size {
            let e = rng.next_below(m);
            if private.binary_search(&e).is_err() {
                b.add_edge(Edge::new(s, e));
                placed += 1;
            }
        }
    }
    PlantedInstance {
        instance: b.build(),
        optimal_family: (0..k_star as u32).map(SetId).collect(),
        optimal_value: k_star,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_cover_golden_family_covers_everything() {
        let p = planted_k_cover(30, 1000, 5, 50, 1);
        assert_eq!(p.instance.num_sets(), 30);
        assert_eq!(p.instance.num_elements(), 1000);
        assert_eq!(p.instance.coverage(&p.optimal_family), 1000);
        assert_eq!(p.optimal_value, 1000);
    }

    #[test]
    fn k_cover_no_decoy_family_beats_golden() {
        let p = planted_k_cover(20, 600, 4, 30, 2);
        // Any family of 4 decoys covers at most 4·30 = 120 < 600.
        let decoys: Vec<SetId> = (4u32..8).map(SetId).collect();
        assert!(p.instance.coverage(&decoys) < 600);
    }

    #[test]
    fn set_cover_minimum_is_k_star() {
        let p = planted_set_cover(25, 500, 5, 40, 3);
        assert!(p.instance.is_cover(&p.optimal_family));
        // Private elements force every golden set into any cover: removing
        // one golden set always leaves its private element uncovered.
        for drop in 0..5u32 {
            let family: Vec<SetId> = (0..25u32).filter(|&s| s != drop).map(SetId).collect();
            assert!(
                !p.instance.is_cover(&family),
                "cover without golden set {drop} should fail"
            );
        }
        assert_eq!(p.optimal_value, 5);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = planted_k_cover(15, 300, 3, 20, 9);
        let b = planted_k_cover(15, 300, 3, 20, 9);
        assert_eq!(a.instance.num_edges(), b.instance.num_edges());
        let ea: Vec<_> = a.instance.edges().collect();
        let eb: Vec<_> = b.instance.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    #[should_panic(expected = "1 ≤ k ≤ n")]
    fn k_cover_rejects_bad_k() {
        planted_k_cover(3, 100, 5, 10, 1);
    }
}
