//! Adversarial instances with known structure.
//!
//! Worst-case constructions from the classical analysis literature, used
//! to verify that the implementations actually *pay* their approximation
//! factors (a reproduction that only ever shows algorithms near-optimal
//! on easy data has not tested its guarantees):
//!
//! * [`greedy_trap`] — the textbook instance on which greedy set cover
//!   outputs `p` sets while the optimum is 2, exhibiting the `Θ(ln m)`
//!   gap that Feige's lower bound (paper's `[22]`) says is unavoidable;
//!   restricted to `k = 2` it also pins greedy k-cover to a `3/4` ratio
//!   (`= 1 − (1 − 1/2)²`).
//! * [`disjoint_blocks`] — a trivially easy control instance (every
//!   algorithm should be exactly optimal).

use coverage_core::{CoverageInstance, Edge, InstanceBuilder, SetId};

/// The greedy-trap instance and its ground truth.
#[derive(Clone, Debug)]
pub struct GreedyTrap {
    /// The instance: `p + 2` sets over `2·(2^p − 1)` elements.
    pub instance: CoverageInstance,
    /// The two optimal cover sets (`A` then `B`).
    pub optimal_cover: Vec<SetId>,
    /// The trap sets greedy is drawn to, largest first.
    pub trap_sets: Vec<SetId>,
}

/// Build the classic greedy-lower-bound instance with parameter `p ≥ 2`.
///
/// The universe is two disjoint rows `A` and `B` of `N = 2^p − 1` elements
/// each. Sets `A` (id 0) and `B` (id 1) cover a full row apiece — the
/// optimum cover of size 2. Trap set `T_i` (id `2+i`, `i = 0..p`) covers
/// `2^{p−1−i}` fresh elements from *each* row, all traps disjoint, jointly
/// exhausting the universe.
///
/// Greedy's trajectory: `|T_0| = 2^p > N = |A|`, so greedy takes `T_0`;
/// thereafter the surviving gain of `A` is always one less than the next
/// trap's size, so greedy walks down the whole trap chain — `p` sets
/// instead of 2.
pub fn greedy_trap(p: u32) -> GreedyTrap {
    assert!(p >= 2, "need p ≥ 2 for a non-trivial trap");
    let n_elems_per_row = (1u64 << p) - 1;
    // Row A: ids [0, N); row B: ids [N, 2N).
    let mut b = InstanceBuilder::new(2 + p as usize);
    for e in 0..n_elems_per_row {
        b.add_edge(Edge::new(0u32, e));
        b.add_edge(Edge::new(1u32, n_elems_per_row + e));
    }
    // Trap T_i takes the next 2^{p-1-i} elements of each row.
    let mut cursor = 0u64;
    for i in 0..p {
        let width = 1u64 << (p - 1 - i);
        let sid = 2 + i;
        for off in 0..width {
            b.add_edge(Edge::new(sid, cursor + off));
            b.add_edge(Edge::new(sid, n_elems_per_row + cursor + off));
        }
        cursor += width;
    }
    debug_assert_eq!(cursor, n_elems_per_row);
    GreedyTrap {
        instance: b.build(),
        optimal_cover: vec![SetId(0), SetId(1)],
        trap_sets: (0..p).map(|i| SetId(2 + i)).collect(),
    }
}

/// `k` pairwise-disjoint sets of `size` elements each — the easiest
/// possible instance (OPT is unique and every sensible algorithm finds it).
pub fn disjoint_blocks(k: usize, size: u64) -> CoverageInstance {
    let mut b = InstanceBuilder::new(k);
    for s in 0..k as u32 {
        for e in 0..size {
            b.add_edge(Edge::new(s, s as u64 * size + e));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::offline::{greedy_set_cover, lazy_greedy_k_cover};

    #[test]
    fn trap_structure_is_sound() {
        for p in [2u32, 3, 5, 8] {
            let t = greedy_trap(p);
            let n = ((1u64 << p) - 1) as usize;
            assert_eq!(t.instance.num_sets(), 2 + p as usize);
            assert_eq!(t.instance.num_elements(), 2 * n);
            assert!(t.instance.is_cover(&t.optimal_cover), "p={p}");
            assert!(t.instance.is_cover(&t.trap_sets), "p={p}: traps cover");
        }
    }

    #[test]
    fn greedy_walks_into_the_trap() {
        for p in [3u32, 5, 7] {
            let t = greedy_trap(p);
            let cover = greedy_set_cover(&t.instance);
            assert_eq!(
                cover.family(),
                t.trap_sets,
                "p={p}: greedy must take exactly the trap chain"
            );
            assert_eq!(cover.len(), p as usize, "p={p}: gap vs OPT=2");
        }
    }

    #[test]
    fn greedy_k2_ratio_is_three_quarters() {
        let t = greedy_trap(10);
        let g = lazy_greedy_k_cover(&t.instance, 2);
        let opt = t.instance.coverage(&t.optimal_cover);
        let ratio = g.coverage() as f64 / opt as f64;
        // T_0 (2^p) then one row's residual (2^{p-1}−1): ratio → 3/4.
        assert!(
            (0.74..0.76).contains(&ratio),
            "ratio {ratio} should approach 3/4"
        );
    }

    #[test]
    fn traps_partition_the_universe() {
        let t = greedy_trap(6);
        let total: usize = t.trap_sets.iter().map(|&s| t.instance.set_size(s)).sum();
        assert_eq!(total, t.instance.num_elements(), "traps are disjoint");
    }

    #[test]
    fn disjoint_blocks_are_disjoint() {
        let g = disjoint_blocks(5, 40);
        assert_eq!(g.num_sets(), 5);
        assert_eq!(g.num_elements(), 200);
        assert_eq!(g.coverage(&[SetId(0), SetId(1)]), 80);
        let t = lazy_greedy_k_cover(&g, 3);
        assert_eq!(t.coverage(), 120, "greedy is optimal on disjoint blocks");
    }

    #[test]
    #[should_panic(expected = "need p ≥ 2")]
    fn tiny_p_rejected() {
        greedy_trap(1);
    }
}
