//! # coverage-suite
//!
//! A production-quality Rust reproduction of
//!
//! > Bateni, Esfandiari, Mirrokni.
//! > **Almost Optimal Streaming Algorithms for Coverage Problems.**
//! > SPAA 2017 (arXiv:1610.08096).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | instances, coverage function, offline greedy/exact solvers |
//! | [`hash`] | seeded uniform hashing, KMV/LogLog distinct counters |
//! | [`stream`] | edge-arrival streams (insertion-only + signed dynamic), arrival orders, space metering |
//! | [`sketch`] | the paper's `H≤n` sketch (`Hp`, `H'p`, threshold sketch) + the dynamic linear sketch |
//! | [`algs`] | Algorithms 3–6 (+ dynamic k-cover) + baselines (Saha–Getoor, Sieve, ℓ₀) |
//! | [`lb`] | hardness artifacts (k-purification, noisy oracle, DISJ) |
//! | [`data`] | synthetic workload generators (incl. deletion workloads) |
//! | [`dist`] | distributed executors: sharding, generic tree reduce, parallel + dynamic runners |
//! | [`serve`] | the serving subsystem: epoch-snapshot publication, concurrent ingest, lock-free queries, the `coverage serve` daemon |
//!
//! The paper-to-code map in `docs/PAPER_MAP.md` locates every paper
//! artifact (algorithms, lemma checks, lower bounds, the dynamic
//! extension) in the source tree.
//!
//! ## Quickstart
//!
//! ```
//! use coverage_suite::prelude::*;
//!
//! // A planted instance: 4 golden sets partition 10_000 elements.
//! let planted = planted_k_cover(40, 10_000, 4, 300, /*seed=*/ 1);
//! let mut stream = VecStream::from_instance(&planted.instance);
//! ArrivalOrder::Random(7).apply(stream.edges_mut());
//!
//! // Single pass, Õ(n) space, (1 − 1/e − ε)-approximate.
//! let cfg = KCoverConfig::new(/*k=*/ 4, /*eps=*/ 0.2, /*seed=*/ 42)
//!     .with_sizing(SketchSizing::Budget(5_000));
//! let result = k_cover_streaming(&stream, &cfg);
//!
//! let achieved = planted.instance.coverage(&result.family);
//! assert!(achieved as f64 >= 0.8 * planted.optimal_value as f64);
//! assert!(result.space.peak_edges < planted.instance.num_edges() as u64);
//! ```

#![forbid(unsafe_code)]

pub use coverage_algs as algs;
pub use coverage_core as core;
pub use coverage_data as data;
pub use coverage_dist as dist;
pub use coverage_hash as hash;
pub use coverage_lb as lb;
pub use coverage_serve as serve;
pub use coverage_sketch as sketch;
pub use coverage_stream as stream;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use coverage_algs::baselines::{
        l0_exhaustive_k_cover, l0_greedy_k_cover, mcgregor_vu_k_cover, progressive_set_cover,
        saha_getoor_k_cover, sieve_k_cover, store_all_k_cover, store_all_set_cover, BaselineResult,
        L0Config, MvConfig,
    };
    pub use coverage_algs::{
        apply_prune, dynamic_k_cover, k_cover_streaming, prune_near_duplicates,
        set_cover_multipass, set_cover_outliers, solve_guesses_parallel, solve_guesses_serial,
        solve_on_sketch, DynamicKCoverConfig, DynamicKCoverResult, GuessSolve, KCoverConfig,
        KCoverResult, MultiPassConfig, MultiPassResult, OutlierConfig, OutlierResult, PruneResult,
    };
    pub use coverage_core::offline::{
        bucket_greedy_budgeted_cover, bucket_greedy_k_cover, bucket_greedy_set_cover,
        exact_k_cover, exact_set_cover, exact_weighted_k_cover, greedy_budgeted_cover,
        greedy_k_cover, greedy_partial_cover, greedy_set_cover, lazy_greedy_k_cover,
        local_search_k_cover, parallel_greedy_k_cover, stochastic_greedy_k_cover,
        weighted_coverage, weighted_greedy_k_cover, weighted_greedy_partial_cover, ElementWeights,
    };
    pub use coverage_core::{
        CoverageInstance, CoverageOracle, CoverageView, CsrInstance, Edge, ElementId,
        InstanceBuilder, SetId,
    };
    pub use coverage_data::{
        adversarial_insert_delete, churn_workload, disjoint_blocks, greedy_trap, planted_k_cover,
        planted_set_cover, preferential_attachment, sliding_window_workload, uniform_instance,
        zipf_instance, BlockModel, DynamicWorkload, InstanceMeta, PlantedDynamicWorkload,
    };
    pub use coverage_dist::{
        distributed_k_cover, distributed_k_cover_serial, dynamic_distributed_k_cover,
        partition_edges, partition_updates, tree_reduce, tree_reduce_via, DistConfig, DistResult,
        DynDistResult, DynProcessResult, DynSocketResult, DynamicParallelResult, Fault, FaultPlan,
        FaultyTransport, HeartbeatStats, IngestMode, ParallelResult, ParallelRunner, ProcessResult,
        ProcessRunner, RetryPolicy, RunError, ShipFormat, SocketResult, SocketRunStats,
        SocketRunner, SplitMix64, WorkerCommand, WorkerState, WorkerSummary,
    };
    pub use coverage_serve::{
        answer_query, answer_query_deadline, EpochSnapshot, GuessView, LiveStore, QueryAnswer,
        QueryHandle, ServeConfig, ServeEngine, ServeError, ServeFinish, ServeStats, SnapshotCell,
        SnapshotReader, StoreConfig,
    };
    pub use coverage_sketch::{
        AblatedSketch, DynamicSample, DynamicSketch, DynamicSketchParams, DynamicSnapshot,
        EvictionPolicy, ReferenceSketch, SketchBank, SketchParams, SketchSizing, SketchSnapshot,
        ThresholdSketch,
    };
    pub use coverage_stream::{
        surviving_edges, surviving_stream, validate_turnstile, ArrivalOrder, ChunkedDynamicStream,
        ChunkedStream, DynamicEdgeStream, EdgeStream, InsertOnly, SignedEdge, SpaceReport,
        UpdateKind, VecDynamicStream, VecStream,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable() {
        let planted = planted_k_cover(10, 500, 2, 30, 1);
        let stream = VecStream::from_instance(&planted.instance);
        let cfg = KCoverConfig::new(2, 0.3, 1).with_sizing(SketchSizing::Budget(2_000));
        let res = k_cover_streaming(&stream, &cfg);
        assert!(!res.family.is_empty());
    }
}
