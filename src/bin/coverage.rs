//! `coverage` — a command-line front end for the streaming coverage
//! library.
//!
//! ```text
//! coverage kcover    --n 200 --m 50000 --k 8 [--budget 5000] [--workload zipf]
//! coverage setcover  --n 200 --m 20000 --kstar 10 --lambda 0.1
//! coverage multipass --n 200 --m 40000 --kstar 10 --rounds 3
//! coverage dist      --n 200 --m 40000 --k 6 --machines 8
//! coverage serve     --n 200 --guesses 8                  # framed daemon on stdin/stdout
//! coverage gen       --n 50 --m 1000 --workload uniform   # dump edges as TSV
//! ```
//!
//! Everything is seeded (`--seed`, default 42) and prints a result table
//! plus the space report, so the tool doubles as a quick benchmarking
//! harness on synthetic workloads.

use std::collections::HashMap;
use std::process::exit;

use coverage_suite::core::report::{fmt_count, fmt_f, Table};
use coverage_suite::data::domains::blog_watch;
use coverage_suite::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The hidden `worker` mode must not go through flag parsing: it
    // speaks the framed binary protocol on stdin/stdout (pipe mode) or
    // over a TCP connection (`worker --connect HOST:PORT`), and is
    // spawned by `dist --processes` / `dist --sockets` (or started by
    // hand against a `dist --listen` coordinator).
    if args.first().map(String::as_str) == Some("worker") {
        let code = match args.get(1).map(String::as_str) {
            Some("--connect") => match args.get(2) {
                Some(addr) => coverage_suite::dist::worker::run_connect(addr),
                None => {
                    eprintln!("worker --connect requires HOST:PORT");
                    2
                }
            },
            None => coverage_suite::dist::worker::run_stdio(),
            Some(other) => {
                eprintln!("unknown worker argument `{other}` (expected --connect HOST:PORT)");
                2
            }
        };
        exit(code);
    }
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        exit(2);
    };
    match cmd.as_str() {
        "kcover" => cmd_kcover(&flags),
        "setcover" => cmd_setcover(&flags),
        "multipass" => cmd_multipass(&flags),
        "dist" => cmd_dist(&flags),
        "serve" => cmd_serve(&flags),
        "solve" => cmd_solve(&flags),
        "lemmas" => cmd_lemmas(&flags),
        "gen" => cmd_gen(&flags),
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            exit(2);
        }
    }
}

const USAGE: &str = "coverage — streaming coverage problems (SPAA'17 H<=n sketch)

USAGE:
  coverage kcover    --n <sets> --m <elements> --k <k> [--budget B] [--eps E] [--workload W] [--seed S]
                     [--input FILE.sets]   # load an instance instead of generating one
                     [--dynamic] [--pattern churn|window|adversarial] [--churn F]
                     # --dynamic: run on a signed insert/delete stream (default
                     #   pattern: churn with fraction F, default 0.3) and compare
                     #   against the insertion-only run on the surviving edges
  coverage setcover  --n <sets> --m <elements> --kstar <k*> --lambda <L> [--budget B] [--eps E] [--seed S]
  coverage multipass --n <sets> --m <elements> --kstar <k*> --rounds <r> [--budget B] [--eps E] [--seed S]
  coverage dist      --n <sets> --m <elements> --k <k> --machines <w> [--parallel T] [--budget B] [--seed S]
                     [--processes P] [--sockets P] [--listen ADDR] [--ship json|binary]
                     [--ingest pipelined|two-barrier] [--fault-plan SEED:SPEC] [--job-timeout-ms MS]
                     [--chunk-items N] [--late-worker-ms MS]
                     # --parallel T: run the parallel sharded executor on T threads
                     #   (one partition pass + concurrent map + tree reduce);
                     #   same selected cover as the sequential simulation, faster
                     # --ingest: how the map phase consumes the stream —
                     #   pipelined (default; bounded channels, partition
                     #   overlaps build) or two-barrier (partition fully,
                     #   then build); the selected cover is identical
                     # --processes P: run the map phase on P real worker
                     #   subprocesses (this binary re-invoked in a hidden
                     #   `worker` mode, framed binary pipes); same family again
                     # --ship: snapshot wire format for the reduce (and the
                     #   worker pipes); binary is the compact framed codec
                     # --sockets P: like --processes, but the workers dial
                     #   back over loopback TCP (`worker --connect`) with
                     #   heartbeat liveness and chunked shard streaming
                     # --listen ADDR: socket coordinator without self-spawn —
                     #   bind ADDR (e.g. 0.0.0.0:7700) and wait for workers
                     #   started by hand as `coverage worker --connect ADDR`
                     # --fault-plan: deterministic fault injection for the
                     #   multiprocess/socket executors — SPEC is a comma list
                     #   of crash@N, hang@N, delay<MS>@N, corrupt@N, rand<PCT>
                     #   plus (sockets only) drop@N, stall<MS>@N, dup@N
                     #   (e.g. 7:crash@0,drop@2,rand10). The run must
                     #   still produce the fault-free family.
                     # --job-timeout-ms: per-shard deadline before a stalled
                     #   worker is reaped and its shard requeued
                     # --chunk-items N: socket streaming chunk size (items
                     #   per JobChunk frame); --late-worker-ms MS: self-spawn
                     #   one extra loopback worker MS into the run
  coverage serve     --n <sets> [--guesses G] [--dynamic [--k K]] [--eps E] [--budget B] [--seed S]
                     [--publish-every U] [--queue Q] [--journal] [--journal-recover]
                     # long-lived serving daemon speaking the framed CVSV
                     #   protocol on stdin/stdout: writers stream signed edges
                     #   in (update frames), readers get k-cover answers from
                     #   epoch-tagged published snapshots (query frames), plus
                     #   stats/flush/snapshot/shutdown frames. A fresh epoch is
                     #   published every U applied updates (default 65536); the
                     #   bounded queue of Q batches (default 16) exerts
                     #   backpressure on writers. Default store: a G-guess H<=n
                     #   bank (insertion-only); --dynamic serves the l0 sketch
                     #   and accepts deletes. --journal-recover (implies
                     #   --journal) restarts a crashed ingest thread from the
                     #   applied-update journal, pinned to the last published
                     #   epoch, instead of serving degraded
  coverage solve     --n <sets> --m <elements> --k <k> [--workload W] [--seed S]
                     # offline solver comparison: greedy / local search / stochastic / parallel
  coverage lemmas    [--n N] [--m M] [--seed S]        # empirical Section 2 lemma checks
  coverage gen       --n <sets> --m <elements> [--workload W] [--seed S] [--format tsv|sets|json]
                     [--deletions F]   # emit a signed churn stream as 3-column TSV
                                       # (op +/-, set, element); F = churn fraction

WORKLOADS: uniform (default) | zipf | planted | blogs
DEFAULTS:  --eps 0.25  --budget 5000  --seed 42";

/// Split `cmd flag-value pairs` into a command plus a flag map. A flag
/// followed by another flag (or by nothing) is a bare boolean switch
/// and maps to `"true"` — e.g. `kcover --dynamic`.
fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let (cmd, rest) = args.split_first()?;
    let mut flags = HashMap::new();
    let mut it = rest.iter().peekable();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        let val = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().expect("just peeked").clone(),
            _ => "true".to_string(),
        };
        flags.insert(key.to_string(), val);
    }
    Some((cmd.clone(), flags))
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {v}");
            exit(2);
        }),
        None => default,
    }
}

fn require<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str) -> T {
    match flags.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {v}");
            exit(2);
        }),
        None => {
            eprintln!("missing required flag --{key}\n{USAGE}");
            exit(2);
        }
    }
}

/// Build the requested workload; returns the instance and, when known, the
/// planted optimum for a k-cover of size `k`.
fn workload(
    flags: &HashMap<String, String>,
    k: usize,
) -> (coverage_suite::core::CoverageInstance, Option<usize>) {
    let n: usize = require(flags, "n");
    let m: u64 = require(flags, "m");
    let seed: u64 = get(flags, "seed", 42);
    let kind = flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("uniform");
    match kind {
        "uniform" => (
            uniform_instance(n, m, (m / 50).max(10) as usize, seed),
            None,
        ),
        "zipf" => (
            zipf_instance(n, m, 0.5, 1.05, (m / 4).max(8) as usize, seed),
            None,
        ),
        "planted" => {
            let p = planted_k_cover(n, m, k.max(1), (m / 20).max(4) as usize, seed);
            (p.instance, Some(p.optimal_value))
        }
        "blogs" => (blog_watch(n, m, seed), None),
        other => {
            eprintln!("unknown workload `{other}` (uniform|zipf|planted|blogs)");
            exit(2);
        }
    }
}

fn stream_of(inst: &coverage_suite::core::CoverageInstance, seed: u64) -> VecStream {
    let mut s = VecStream::from_instance(inst);
    ArrivalOrder::Random(seed ^ 0xC11).apply(s.edges_mut());
    s
}

fn print_header(inst: &coverage_suite::core::CoverageInstance) {
    println!(
        "instance: n={} m={} |E|={}",
        fmt_count(inst.num_sets() as u64),
        fmt_count(inst.num_elements() as u64),
        fmt_count(inst.num_edges() as u64)
    );
}

fn cmd_kcover(flags: &HashMap<String, String>) {
    let k: usize = require(flags, "k");
    // The adversarial dynamic pattern constructs its own planted
    // instance (the transient decoy inflation needs construction-time
    // ground truth), so dispatch it before generating a base instance
    // that would only be thrown away.
    if flags.contains_key("dynamic")
        && flags.get("pattern").map(String::as_str) == Some("adversarial")
    {
        if flags.contains_key("input") {
            eprintln!(
                "--pattern adversarial generates its own planted instance and \
                 cannot run on --input; use --pattern churn or window"
            );
            exit(2);
        }
        cmd_kcover_dynamic(flags, k, None);
        return;
    }
    let (inst, opt) = match flags.get("input") {
        Some(path) => match coverage_suite::data::load_text(path) {
            Ok(inst) => (inst, None),
            Err(e) => {
                eprintln!("cannot load {path}: {e}");
                exit(2);
            }
        },
        None => workload(flags, k),
    };
    if flags.contains_key("dynamic") {
        cmd_kcover_dynamic(flags, k, Some(&inst));
        return;
    }
    print_header(&inst);
    let seed: u64 = get(flags, "seed", 42);
    let eps: f64 = get(flags, "eps", 0.25);
    let budget: usize = get(flags, "budget", 5_000);
    let stream = stream_of(&inst, seed);
    let res = k_cover_streaming(
        &stream,
        &KCoverConfig::new(k, eps, seed).with_sizing(SketchSizing::Budget(budget)),
    );
    let covered = inst.coverage(&res.family);
    let mut t = Table::new("k-cover (Algorithm 3)", &["metric", "value"]);
    t.row(vec!["family".into(), format!("{:?}", res.family)]);
    t.row(vec!["covered".into(), fmt_count(covered as u64)]);
    if let Some(opt) = opt {
        t.row(vec![
            "coverage/OPT".into(),
            fmt_f(covered as f64 / opt as f64, 4),
        ]);
    }
    t.row(vec!["estimate".into(), fmt_f(res.estimated_coverage, 1)]);
    t.row(vec!["sampling p*".into(), fmt_f(res.sampling_p, 6)]);
    t.row(vec![
        "space (edges)".into(),
        fmt_count(res.space.peak_edges),
    ]);
    t.row(vec!["passes".into(), res.space.passes.to_string()]);
    println!("{}", t.render());
}

/// `kcover --dynamic`: build a signed insert/delete workload over the
/// generated instance (`None` only for the adversarial pattern, which
/// plants its own), run the dynamic pipeline, and compare its cover
/// against the insertion-only run on the surviving edges — the paper's
/// approximation story, judged on the graph the deletions leave behind.
fn cmd_kcover_dynamic(
    flags: &HashMap<String, String>,
    k: usize,
    inst: Option<&coverage_suite::core::CoverageInstance>,
) {
    use coverage_suite::data::{
        adversarial_insert_delete, churn_workload, sliding_window_workload,
    };
    let seed: u64 = get(flags, "seed", 42);
    let eps: f64 = get(flags, "eps", 0.25);
    let budget: usize = get(flags, "budget", 5_000);
    let churn: f64 = get(flags, "churn", 0.3);
    if !(0.0..=1.0).contains(&churn) {
        eprintln!("--churn must lie in [0,1], got {churn}");
        exit(2);
    }
    let pattern = flags.get("pattern").map(String::as_str).unwrap_or("churn");
    let (stream, surviving) = match pattern {
        "churn" => {
            let w = churn_workload(
                inst.expect("churn pattern has a base instance"),
                churn,
                seed ^ 0xD11,
            );
            (w.stream, w.surviving)
        }
        "window" => {
            let w = sliding_window_workload(
                inst.expect("window pattern has a base instance"),
                5,
                2,
                seed ^ 0xD12,
            );
            (w.stream, w.surviving)
        }
        "adversarial" => {
            let n: usize = require(flags, "n");
            let m: u64 = require(flags, "m");
            let w = adversarial_insert_delete(n, m, k.max(1), (m / 20).max(4) as usize, seed);
            (w.stream, w.planted.instance)
        }
        other => {
            eprintln!("unknown pattern `{other}` (churn|window|adversarial)");
            exit(2);
        }
    };
    println!(
        "dynamic stream: {} updates ({} inserts, {} deletes), {} surviving edges",
        fmt_count(stream.updates().len() as u64),
        fmt_count(stream.num_inserts() as u64),
        fmt_count(stream.num_deletes() as u64),
        fmt_count(surviving.num_edges() as u64)
    );
    let dyn_res = dynamic_k_cover(
        &stream,
        &DynamicKCoverConfig::new(k, eps, seed).with_sizing(SketchSizing::Budget(budget)),
    );
    // The insertion-only reference on the surviving edge set.
    let ins_res = k_cover_streaming(
        &stream_of(&surviving, seed),
        &KCoverConfig::new(k, eps, seed).with_sizing(SketchSizing::Budget(budget)),
    );
    let dyn_cov = surviving.coverage(&dyn_res.family);
    let ins_cov = surviving.coverage(&ins_res.family).max(1);
    let mut t = Table::new(
        format!("dynamic k-cover ({pattern} pattern)"),
        &["metric", "value"],
    );
    t.row(vec!["family".into(), format!("{:?}", dyn_res.family)]);
    t.row(vec![
        "covered (surviving)".into(),
        fmt_count(dyn_cov as u64),
    ]);
    t.row(vec![
        "insertion-only on survivors".into(),
        fmt_count(ins_cov as u64),
    ]);
    t.row(vec![
        "dynamic/insertion-only".into(),
        fmt_f(dyn_cov as f64 / ins_cov as f64, 4),
    ]);
    t.row(vec![
        "estimate".into(),
        fmt_f(dyn_res.estimated_coverage, 1),
    ]);
    t.row(vec![
        "sample level".into(),
        dyn_res.sample_level.to_string(),
    ]);
    t.row(vec!["sampling p".into(), fmt_f(dyn_res.sampling_p, 6)]);
    t.row(vec![
        "recovered edges".into(),
        fmt_count(dyn_res.recovered_edges as u64),
    ]);
    t.row(vec![
        "space (words)".into(),
        fmt_count(dyn_res.space.total_words()),
    ]);
    println!("{}", t.render());
}

fn cmd_setcover(flags: &HashMap<String, String>) {
    let k_star: usize = require(flags, "kstar");
    let n: usize = require(flags, "n");
    let m: u64 = require(flags, "m");
    let seed: u64 = get(flags, "seed", 42);
    let lambda: f64 = get(flags, "lambda", 0.1);
    let eps: f64 = get(flags, "eps", 0.5);
    let budget: usize = get(flags, "budget", 5_000);
    let p = planted_set_cover(n, m, k_star, (m / 20).max(4) as usize, seed);
    print_header(&p.instance);
    let stream = stream_of(&p.instance, seed);
    let res = set_cover_outliers(
        &stream,
        &OutlierConfig::new(lambda, eps, seed).with_sizing(SketchSizing::Budget(budget)),
    );
    let mut t = Table::new(
        "set cover with outliers (Algorithm 5)",
        &["metric", "value"],
    );
    t.row(vec!["sets used".into(), res.family.len().to_string()]);
    t.row(vec![
        "|S|/k*".into(),
        fmt_f(res.family.len() as f64 / k_star as f64, 3),
    ]);
    t.row(vec![
        "covered fraction".into(),
        fmt_f(p.instance.coverage_fraction(&res.family), 4),
    ]);
    t.row(vec!["verified".into(), res.verified.to_string()]);
    t.row(vec!["guesses built".into(), res.num_guesses.to_string()]);
    t.row(vec![
        "space (edges)".into(),
        fmt_count(res.space.peak_edges),
    ]);
    println!("{}", t.render());
}

fn cmd_multipass(flags: &HashMap<String, String>) {
    let k_star: usize = require(flags, "kstar");
    let n: usize = require(flags, "n");
    let m: u64 = require(flags, "m");
    let seed: u64 = get(flags, "seed", 42);
    let rounds: usize = get(flags, "rounds", 3);
    let eps: f64 = get(flags, "eps", 0.5);
    let budget: usize = get(flags, "budget", 5_000);
    let p = planted_set_cover(n, m, k_star, (m / 20).max(4) as usize, seed);
    print_header(&p.instance);
    let stream = stream_of(&p.instance, seed);
    let res = set_cover_multipass(
        &stream,
        &MultiPassConfig::new(rounds, eps, seed)
            .with_m(p.instance.num_elements())
            .with_sizing(SketchSizing::Budget(budget)),
    );
    let mut t = Table::new("set cover (Algorithm 6)", &["metric", "value"]);
    t.row(vec!["cover size".into(), res.family.len().to_string()]);
    t.row(vec![
        "|S|/k*".into(),
        fmt_f(res.family.len() as f64 / k_star as f64, 3),
    ]);
    t.row(vec![
        "is cover".into(),
        p.instance.is_cover(&res.family).to_string(),
    ]);
    t.row(vec!["passes".into(), res.passes.to_string()]);
    t.row(vec![
        "residual edges".into(),
        fmt_count(res.residual_edges as u64),
    ]);
    t.row(vec![
        "space (edges)".into(),
        fmt_count(res.space.peak_edges),
    ]);
    println!("{}", t.render());
}

fn cmd_dist(flags: &HashMap<String, String>) {
    let k: usize = require(flags, "k");
    let machines: usize = get(flags, "machines", 4);
    let (inst, opt) = workload(flags, k);
    print_header(&inst);
    let seed: u64 = get(flags, "seed", 42);
    let budget: usize = get(flags, "budget", 5_000);
    let stream = stream_of(&inst, seed);
    let cfg = DistConfig::new(machines, k, 0.25, seed).with_sizing(SketchSizing::Budget(budget));
    let threads: usize = get(flags, "parallel", 0);
    let processes: usize = get(flags, "processes", 0);
    let ship = match flags.get("ship") {
        Some(s) => match ShipFormat::parse(s) {
            Some(f) => f,
            None => {
                eprintln!("unknown ship format `{s}` (json|binary|memory)");
                exit(2);
            }
        },
        None => ShipFormat::Binary,
    };
    let ingest = match flags.get("ingest").map(String::as_str) {
        Some("pipelined") | None => IngestMode::Pipelined,
        Some("two-barrier") => IngestMode::TwoBarrier,
        Some(s) => {
            eprintln!("unknown ingest mode `{s}` (pipelined|two-barrier)");
            exit(2);
        }
    };
    let fault_plan = flags.get("fault-plan").map(|s| match FaultPlan::parse(s) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("invalid --fault-plan: {e}");
            exit(2);
        }
    });
    let job_timeout_ms: u64 = get(flags, "job-timeout-ms", 0);
    let sockets: usize = get(flags, "sockets", 0);
    let listen = flags.get("listen").cloned();
    if sockets > 0 || listen.is_some() {
        cmd_dist_sockets(
            cfg,
            sockets,
            listen,
            ship,
            fault_plan,
            job_timeout_ms,
            flags,
            &stream,
            &inst,
            opt,
            machines,
        );
        return;
    }
    if processes > 0 {
        cmd_dist_processes(
            cfg,
            processes,
            ship,
            fault_plan,
            job_timeout_ms,
            &stream,
            &inst,
            opt,
            machines,
        );
        return;
    }
    if fault_plan.is_some() || job_timeout_ms > 0 {
        eprintln!(
            "--fault-plan/--job-timeout-ms require the multiprocess executor \
             (--processes P) or the socket executor (--sockets P / --listen ADDR)"
        );
        exit(2);
    }
    let (family, per_machine, merged_edges, extra_rows) = if threads > 0 {
        let res = ParallelRunner::new(cfg, threads)
            .with_ingest_mode(ingest)
            .run(&stream);
        let extras = vec![
            ("ingest mode".to_string(), format!("{ingest:?}")),
            ("threads".to_string(), res.threads_used.to_string()),
            (
                "partition ms".to_string(),
                fmt_f(res.partition_ns as f64 / 1e6, 2),
            ),
            ("map ms".to_string(), fmt_f(res.map_ns as f64 / 1e6, 2)),
            (
                "reduce+solve ms".to_string(),
                fmt_f(res.reduce_solve_ns as f64 / 1e6, 2),
            ),
            (
                "reduce rounds".to_string(),
                res.rounds.num_rounds().to_string(),
            ),
            (
                "words shipped".to_string(),
                fmt_count(res.rounds.total_words()),
            ),
        ];
        (res.family, res.per_machine, res.merged_edges, extras)
    } else {
        let res = distributed_k_cover(&stream, &cfg);
        (res.family, res.per_machine, res.merged_edges, Vec::new())
    };
    let covered = inst.coverage(&family);
    let title = if threads > 0 {
        format!("distributed k-cover ({machines} machines, {threads} threads)")
    } else {
        format!("distributed k-cover ({machines} machines, sequential simulation)")
    };
    let mut t = Table::new(title, &["metric", "value"]);
    t.row(vec!["family".into(), format!("{family:?}")]);
    t.row(vec!["covered".into(), fmt_count(covered as u64)]);
    if let Some(opt) = opt {
        t.row(vec![
            "coverage/OPT".into(),
            fmt_f(covered as f64 / opt as f64, 4),
        ]);
    }
    t.row(vec![
        "max per-machine edges".into(),
        fmt_count(per_machine.iter().map(|r| r.peak_edges).max().unwrap_or(0)),
    ]);
    t.row(vec!["merged edges".into(), fmt_count(merged_edges as u64)]);
    for (k, v) in extra_rows {
        t.row(vec![k, v]);
    }
    println!("{}", t.render());
}

/// `dist --processes P`: the multiprocess executor. Spawns `P` copies
/// of this binary in the hidden `worker` mode and runs the identical
/// partition → map → tree-reduce → solve pipeline over real pipes.
#[allow(clippy::too_many_arguments)]
fn cmd_dist_processes(
    cfg: DistConfig,
    processes: usize,
    ship: ShipFormat,
    fault_plan: Option<FaultPlan>,
    job_timeout_ms: u64,
    stream: &VecStream,
    inst: &coverage_suite::core::CoverageInstance,
    opt: Option<usize>,
    machines: usize,
) {
    let command = match WorkerCommand::current_exe(vec!["worker".to_string()]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot locate own executable for worker spawn: {e}");
            exit(1);
        }
    };
    let mut runner = ProcessRunner::new(cfg, command, processes).with_ship_format(ship);
    if let Some(plan) = fault_plan {
        runner = runner.with_fault_plan(plan);
    }
    if job_timeout_ms > 0 {
        runner = runner.with_job_timeout(std::time::Duration::from_millis(job_timeout_ms));
    }
    let res = match runner.run(stream) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("multiprocess run failed: {e}");
            exit(1);
        }
    };
    let covered = inst.coverage(&res.family);
    let mut t = Table::new(
        format!("distributed k-cover ({machines} machines, {processes} worker processes)"),
        &["metric", "value"],
    );
    t.row(vec!["family".into(), format!("{:?}", res.family)]);
    t.row(vec!["covered".into(), fmt_count(covered as u64)]);
    if let Some(opt) = opt {
        t.row(vec![
            "coverage/OPT".into(),
            fmt_f(covered as f64 / opt as f64, 4),
        ]);
    }
    t.row(vec![
        "merged edges".into(),
        fmt_count(res.merged_edges as u64),
    ]);
    t.row(vec![
        "workers spawned".into(),
        res.workers_spawned.to_string(),
    ]);
    t.row(vec!["workers lost".into(), res.workers_lost.to_string()]);
    t.row(vec![
        "shards resharded".into(),
        res.shards_resharded.to_string(),
    ]);
    t.row(vec![
        "deadline reaps".into(),
        res.deadline_reaps.to_string(),
    ]);
    t.row(vec!["retries".into(), res.retries.to_string()]);
    t.row(vec!["proto faults".into(), res.proto_faults.to_string()]);
    t.row(vec!["ship format".into(), format!("{ship:?}")]);
    t.row(vec!["pipe bytes".into(), fmt_count(res.wire_bytes)]);
    t.row(vec![
        "reduce bytes".into(),
        fmt_count(res.rounds.total_bytes()),
    ]);
    t.row(vec![
        "reduce rounds".into(),
        res.rounds.num_rounds().to_string(),
    ]);
    t.row(vec![
        "partition ms".into(),
        fmt_f(res.partition_ns as f64 / 1e6, 2),
    ]);
    t.row(vec!["map ms".into(), fmt_f(res.map_ns as f64 / 1e6, 2)]);
    t.row(vec![
        "reduce+solve ms".into(),
        fmt_f(res.reduce_solve_ns as f64 / 1e6, 2),
    ]);
    println!("{}", t.render());
}

/// `dist --sockets P` / `dist --listen ADDR`: the TCP socket executor.
/// Loopback mode self-spawns `P` copies of this binary as
/// `worker --connect`; listen mode binds `ADDR` and waits for workers
/// started by hand. Either way the coordinator runs heartbeat-graded
/// liveness, chunked shard streaming, and the identical partition →
/// map → tree-reduce → solve pipeline.
#[allow(clippy::too_many_arguments)]
fn cmd_dist_sockets(
    cfg: DistConfig,
    sockets: usize,
    listen: Option<String>,
    ship: ShipFormat,
    fault_plan: Option<FaultPlan>,
    job_timeout_ms: u64,
    flags: &HashMap<String, String>,
    stream: &VecStream,
    inst: &coverage_suite::core::CoverageInstance,
    opt: Option<usize>,
    machines: usize,
) {
    let mut runner = match listen {
        Some(addr) => {
            if sockets > 0 {
                eprintln!("--listen and --sockets are mutually exclusive");
                exit(2);
            }
            eprintln!("listening on {addr}; start workers with `coverage worker --connect {addr}`");
            SocketRunner::listen(cfg, addr)
        }
        None => {
            let command = match WorkerCommand::current_exe(vec!["worker".to_string()]) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot locate own executable for worker spawn: {e}");
                    exit(1);
                }
            };
            SocketRunner::new(cfg, command, sockets)
        }
    };
    runner = runner.with_ship_format(ship);
    if let Some(plan) = fault_plan {
        runner = runner.with_fault_plan(plan);
    }
    if job_timeout_ms > 0 {
        runner = runner.with_job_timeout(std::time::Duration::from_millis(job_timeout_ms));
    }
    let chunk_items: usize = get(flags, "chunk-items", 0);
    if chunk_items > 0 {
        runner = runner.with_chunk_items(chunk_items);
    }
    let late_worker_ms: u64 = get(flags, "late-worker-ms", 0);
    if late_worker_ms > 0 {
        runner = runner.with_late_worker_after(std::time::Duration::from_millis(late_worker_ms));
    }
    let res = match runner.run(stream) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("socket run failed: {e}");
            exit(1);
        }
    };
    let covered = inst.coverage(&res.family);
    let s = &res.stats;
    let title = if sockets > 0 {
        format!("distributed k-cover ({machines} machines, {sockets} loopback socket workers)")
    } else {
        format!("distributed k-cover ({machines} machines, TCP socket workers)")
    };
    let mut t = Table::new(title, &["metric", "value"]);
    t.row(vec!["family".into(), format!("{:?}", res.family)]);
    t.row(vec!["covered".into(), fmt_count(covered as u64)]);
    if let Some(opt) = opt {
        t.row(vec![
            "coverage/OPT".into(),
            fmt_f(covered as f64 / opt as f64, 4),
        ]);
    }
    t.row(vec![
        "merged edges".into(),
        fmt_count(res.merged_edges as u64),
    ]);
    t.row(vec![
        "workers joined".into(),
        format!("{} ({} late)", s.workers_joined, s.late_joiners),
    ]);
    t.row(vec!["workers lost".into(), s.workers_lost.to_string()]);
    t.row(vec![
        "suspect transitions".into(),
        format!(
            "{} ({} recovered)",
            s.suspect_transitions, s.suspect_recoveries
        ),
    ]);
    t.row(vec![
        "shards requeued".into(),
        s.shards_requeued.to_string(),
    ]);
    t.row(vec![
        "shards built inline".into(),
        s.shards_built_inline.to_string(),
    ]);
    t.row(vec!["deadline reaps".into(), s.deadline_reaps.to_string()]);
    t.row(vec!["retries".into(), s.retries.to_string()]);
    t.row(vec!["proto faults".into(), s.proto_faults.to_string()]);
    t.row(vec![
        "net faults injected".into(),
        format!(
            "{} drop / {} stall / {} dup",
            s.conn_drops_injected, s.stalls_injected, s.chunk_dups_injected
        ),
    ]);
    t.row(vec![
        "chunks streamed".into(),
        fmt_count(s.chunks_streamed as u64),
    ]);
    t.row(vec![
        "overlapped shards".into(),
        s.overlap_shards.to_string(),
    ]);
    t.row(vec![
        "heartbeat rtt us".into(),
        format!(
            "min {} / mean {} / max {} ({} probes)",
            s.heartbeat.min_ns() / 1_000,
            s.heartbeat.mean_ns() / 1_000,
            s.heartbeat.max_ns() / 1_000,
            s.heartbeat.probes
        ),
    ]);
    for w in &s.workers {
        t.row(vec![
            format!("worker {}", w.id),
            format!(
                "{} {} shards={}{}",
                w.addr,
                w.state,
                w.shards_completed,
                if w.late_joiner { " (late)" } else { "" }
            ),
        ]);
    }
    t.row(vec!["ship format".into(), format!("{ship:?}")]);
    t.row(vec!["wire bytes".into(), fmt_count(s.wire_bytes)]);
    t.row(vec![
        "reduce rounds".into(),
        res.rounds.num_rounds().to_string(),
    ]);
    t.row(vec![
        "partition ms".into(),
        fmt_f(res.partition_ns as f64 / 1e6, 2),
    ]);
    t.row(vec!["map ms".into(), fmt_f(res.map_ns as f64 / 1e6, 2)]);
    t.row(vec![
        "reduce+solve ms".into(),
        fmt_f(res.reduce_solve_ns as f64 / 1e6, 2),
    ]);
    println!("{}", t.render());
}

/// `coverage serve`: run the epoch-snapshot serving daemon over this
/// process's stdin/stdout. All output is framed protocol bytes; the
/// drain summary goes to stderr.
fn cmd_serve(flags: &HashMap<String, String>) {
    let n: usize = require(flags, "n");
    let seed: u64 = get(flags, "seed", 42);
    let eps: f64 = get(flags, "eps", 0.25);
    let budget: usize = get(flags, "budget", 5_000);
    let publish_every: u64 = get(flags, "publish-every", 65_536);
    let queue: usize = get(flags, "queue", 16);
    let config = if flags.contains_key("dynamic") {
        let k: usize = get(flags, "k", 4);
        let params = DynamicSketchParams::new(SketchParams::with_budget(n, k, eps, budget));
        ServeConfig::dynamic(params, seed)
    } else {
        let guesses: usize = get(flags, "guesses", 8);
        ServeConfig::bank_ladder(n, guesses, eps, budget, seed)
    };
    let mut config = config
        .with_publish_every(publish_every)
        .with_queue_batches(queue)
        .with_journal(flags.contains_key("journal"));
    if flags.contains_key("journal-recover") {
        config = config.with_auto_recover(true);
    }
    // Hidden test hook: crash the ingest thread after N applied updates
    // so the recovery path can be exercised end to end from the CLI.
    if let Some(after) = flags.get("ingest-panic-after") {
        let after: u64 = after.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --ingest-panic-after: {after}");
            exit(2);
        });
        config = config.with_ingest_panic_after(after);
    }
    exit(coverage_suite::serve::run_stdio(config));
}

fn cmd_gen(flags: &HashMap<String, String>) {
    let (inst, _) = workload(flags, 1);
    let seed: u64 = get(flags, "seed", 42);
    let format = flags.get("format").map(String::as_str).unwrap_or("tsv");
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut lock = std::io::BufWriter::new(stdout.lock());
    if let Some(frac) = flags.get("deletions") {
        // Signed stream output: `op \t set \t element` per update.
        let frac: f64 = frac.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --deletions: {frac}");
            exit(2);
        });
        if !(0.0..=1.0).contains(&frac) {
            eprintln!("--deletions must lie in [0,1], got {frac}");
            exit(2);
        }
        if format != "tsv" {
            eprintln!("--deletions only supports --format tsv (signed update stream)");
            exit(2);
        }
        let w = coverage_suite::data::churn_workload(&inst, frac, seed ^ 0xD11);
        let ok = w.stream.updates().iter().all(|u| {
            let op = match u.kind {
                coverage_suite::stream::UpdateKind::Insert => '+',
                coverage_suite::stream::UpdateKind::Delete => '-',
            };
            writeln!(lock, "{op}\t{}\t{}", u.edge.set.0, u.edge.element.0).is_ok()
        });
        if !ok {
            exit(1);
        }
        return;
    }
    let ok = match format {
        "tsv" => {
            let stream = stream_of(&inst, seed);
            stream
                .edges()
                .iter()
                .all(|e| writeln!(lock, "{}\t{}", e.set.0, e.element.0).is_ok())
        }
        "sets" => lock
            .write_all(coverage_suite::data::to_text(&inst).as_bytes())
            .is_ok(),
        "json" => {
            let meta = InstanceMeta {
                name: "generated".into(),
                source: format!("{flags:?}"),
            };
            lock.write_all(coverage_suite::data::to_json(&inst, &meta).as_bytes())
                .is_ok()
        }
        other => {
            eprintln!("unknown format `{other}` (tsv|sets|json)");
            exit(2);
        }
    };
    if !ok {
        exit(1);
    }
}

fn cmd_solve(flags: &HashMap<String, String>) {
    let k: usize = require(flags, "k");
    let (inst, opt) = workload(flags, k);
    print_header(&inst);
    let seed: u64 = get(flags, "seed", 42);
    let mut t = Table::new(
        "offline solver comparison",
        &["solver", "coverage", "vs greedy", "sets"],
    );
    let greedy = lazy_greedy_k_cover(&inst, k);
    let gcov = greedy.coverage().max(1);
    let mut row = |name: &str, fam: &[SetId]| {
        let c = inst.coverage(fam);
        t.row(vec![
            name.into(),
            fmt_count(c as u64),
            fmt_f(c as f64 / gcov as f64, 4),
            fam.len().to_string(),
        ]);
    };
    row("lazy greedy", &greedy.family());
    row(
        "local search (swap)",
        &local_search_k_cover(&inst, k).family,
    );
    row(
        "stochastic greedy",
        &stochastic_greedy_k_cover(&inst, k, 0.1, seed).family(),
    );
    row(
        "parallel greedy x4",
        &parallel_greedy_k_cover(&inst, k, 4).family(),
    );
    if let Some(opt) = opt {
        t.row(vec![
            "planted OPT".into(),
            fmt_count(opt as u64),
            fmt_f(opt as f64 / gcov as f64, 4),
            "-".into(),
        ]);
    }
    println!("{}", t.render());
}

fn cmd_lemmas(flags: &HashMap<String, String>) {
    use coverage_suite::sketch::{
        check_lemma_2_2, check_lemma_2_3, check_lemma_2_4, check_theorem_2_7,
    };
    let n: usize = get(flags, "n", 30);
    let m: u64 = get(flags, "m", 3_000);
    let seed: u64 = get(flags, "seed", 42);
    let inst = uniform_instance(n, m, (m / 25).max(8) as usize, seed);
    let k = 4;
    let eps = 0.25;
    let p = 0.5;
    let mut t = Table::new(
        format!("Section 2 lemma checks (n={n}, m={m}, k={k}, eps={eps}, p={p})"),
        &["claim", "measured", "bound", "holds"],
    );
    let c = check_lemma_2_2(&inst, k, eps, p, 5, 4, seed);
    t.row(vec![
        "Lemma 2.2 (estimator)".into(),
        fmt_f(c.worst_abs_err, 2),
        fmt_f(c.allowance, 2),
        (c.violations == 0).to_string(),
    ]);
    let c = check_lemma_2_3(&inst, k, eps, p, seed);
    t.row(vec![
        "Lemma 2.3 (Hp -> G)".into(),
        fmt_f(c.ratio_on_target, 3),
        fmt_f(c.guaranteed, 3),
        c.holds().to_string(),
    ]);
    let cap = SketchParams::paper_degree_cap(n, k, eps);
    let c = check_lemma_2_4(&inst, k, eps, p, cap, seed);
    t.row(vec![
        "Lemma 2.4 (H'p -> Hp)".into(),
        fmt_f(c.ratio_on_target, 3),
        fmt_f(c.guaranteed, 3),
        c.holds().to_string(),
    ]);
    let params = SketchParams::with_budget(n, k, eps, 4 * n * k);
    let c = check_theorem_2_7(&inst, params, seed);
    t.row(vec![
        "Theorem 2.7 (H<=n -> G)".into(),
        fmt_f(c.ratio_on_target, 3),
        fmt_f(c.guaranteed, 3),
        c.holds().to_string(),
    ]);
    println!("{}", t.render());
}
