//! Offline stand-in for `criterion`.
//!
//! Provides the subset of criterion's API this workspace's benches use
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`,
//! `black_box`, `criterion_group!`, `criterion_main!`) with a simple
//! median-of-samples wall-clock measurement instead of criterion's
//! statistical machinery. Benches compile and run; numbers are
//! indicative rather than rigorous.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple display.
    BytesDecimal(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Duration,
}

impl Bencher {
    /// Measure a closure: warm up once, then time `samples` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last = times[times.len() / 2];
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group (report separator).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: sample_size,
        last: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.last;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 / per_iter.as_secs_f64()),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(" ({:.3e} B/s)", n as f64 / per_iter.as_secs_f64())
        }
    });
    println!(
        "bench: {name:<50} {per_iter:>12.3?}{}",
        rate.unwrap_or_default()
    );
}

/// Declare a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
