//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, range
//! and tuple strategies, `prop::collection::vec`, `ProptestConfig`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Sampling is deterministic (SplitMix64 seeded by the case index), so
//! failures reproduce exactly across runs. There is no shrinking: a
//! failing case reports its inputs via the assertion message instead.

use std::fmt;
use std::ops::Range;

/// Deterministic RNG used to sample strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case: seeded by the case index so every case
    /// explores a different region but reruns identically.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(case) + 1),
        }
    }

    /// Next 64 uniformly random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error produced by a failed `prop_assert!` inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // i128 arithmetic so signed ranges with negative bounds
                // don't underflow (every listed type fits in i128).
                let width = (self.end as i128) - (self.start as i128);
                assert!(width > 0, "empty range strategy");
                let offset = (rng.next_u64() as i128) % width;
                ((self.start as i128) + offset) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s with length sampled from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`: vectors whose length is uniform in
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace as re-exported by proptest's prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest `{}` case {} failed: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_ranges_with_negative_bounds_sample_in_range() {
        let strat = -5i64..5;
        let mut rng = TestRng::for_case(3);
        for _ in 0..1000 {
            let x = strat.generate(&mut rng);
            assert!((-5..5).contains(&x), "sampled {x} outside -5..5");
        }
    }

    #[test]
    fn unsigned_full_width_range_does_not_overflow() {
        let strat = 0u64..u64::MAX;
        let mut rng = TestRng::for_case(7);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }
}
