//! Offline stand-in for `serde_json`.
//!
//! Implements the JSON text layer (printing and a recursive-descent
//! parser) on top of the vendored `serde` crate's [`Value`] tree, with
//! the subset of the real crate's API this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_value`], [`from_str`],
//! [`Value`], and [`Error`].

pub use serde::{Error, Value};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    v.to_value().write_json(&mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(v: &T) -> Result<String, Error> {
    let mut out = String::new();
    v.to_value().write_json(&mut out, Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
///
/// By value, as in real serde_json (`&T` also works since references
/// serialize transparently).
pub fn to_value<T: serde::Serialize>(v: T) -> Result<Value, Error> {
    Ok(v.to_value())
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's writers; map lone surrogates to
                            // the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole contiguous run of unescaped bytes
                    // with a single UTF-8 validation — validating per
                    // character against the full remaining input would be
                    // quadratic in document size.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    s.push_str(run);
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}
