//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of serde: the `Serialize` /
//! `Deserialize` traits (tree-model flavoured rather than visitor
//! flavoured), a `Value` tree, and derive macros. `serde_json` (also
//! vendored) provides the JSON text layer on top of [`Value`].
//!
//! The traits here are intentionally simpler than real serde's: instead
//! of the serializer/visitor pair, `Serialize` renders into a [`Value`]
//! tree and `Deserialize` reads back out of one. The derive macros in
//! `serde_derive` generate impls of exactly these traits, so downstream
//! code keeps the familiar `#[derive(Serialize, Deserialize)]` +
//! `serde_json::to_string` surface unchanged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A serialized value tree (the data model JSON maps onto).
///
/// Object fields keep insertion order so serialized output is stable.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative numbers).
    Int(i64),
    /// Unsigned integer (the common case for this workspace's counters).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    String(String),
    /// Array of values.
    Array(Vec<Value>),
    /// Object: ordered field list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Interpret any numeric variant as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Interpret an integral variant as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            // Strict `<`: `u64::MAX as f64` rounds up to 2^64, which is
            // out of range and would saturate under `as`.
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// View an array value's items.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// View a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// View a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Interpret an integral variant as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            // `i64::MAX as f64` rounds up to 2^63 (out of range); i64::MIN
            // is exactly -2^63 and in range.
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Write JSON text for this value. `indent = None` is compact,
    /// `Some(step)` pretty-prints with `step`-space indentation.
    pub fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        use fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", f);
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    // Real serde_json errors on non-finite floats; emit
                    // null, which round-trips as Option::None instead of
                    // aborting mid-report.
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                write_json_seq(out, indent, depth, ('[', ']'), items.len(), |out, i| {
                    items[i].write_json(out, indent, depth + 1)
                })
            }
            Value::Object(fields) => {
                write_json_seq(out, indent, depth, ('{', '}'), fields.len(), |out, i| {
                    write_json_string(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write_json(out, indent, depth + 1);
                })
            }
        }
    }
}

fn write_json_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    /// Compact JSON, as serde_json's `Display` for `Value`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other.as_bool() == Some(*self)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Panic-free field access as in serde_json: missing fields and
    /// non-objects index to `Null`.
    fn index(&self, name: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get_field(name).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization error: a message, as in `serde_json::Error`.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Error for a missing object field during deserialization.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// Error for a value of the wrong shape.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error::custom(format!("invalid type: expected {expected}, got {got:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert back from a serialized value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::invalid_type(stringify!($t), v))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::invalid_type(stringify!($t), v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(u) => Value::UInt(u),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::invalid_type("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::invalid_type("f32", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::invalid_type("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::invalid_type("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::invalid_type("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::invalid_type("fixed-size array", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tup = ($(
                            {
                                let slot = it.next()
                                    .ok_or_else(|| Error::custom("tuple too short"))?;
                                $t::from_value(slot)?
                            },
                        )+);
                        Ok(tup)
                    }
                    _ => Err(Error::invalid_type("tuple (array)", v)),
                }
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

impl<K: fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys: HashMap iteration order is randomized per process,
        // and Value::Object promises stable serialized output.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_integer_boundaries_are_rejected() {
        // 2^64 and 2^63 are exactly `u64::MAX as f64` / `i64::MAX as f64`
        // after rounding, but out of range for the integer types.
        assert_eq!(Value::Float(18_446_744_073_709_551_616.0).as_u64(), None);
        assert_eq!(Value::Float(9_223_372_036_854_775_808.0).as_i64(), None);
        // In-range integral floats still convert.
        assert_eq!(Value::Float(42.0).as_u64(), Some(42));
        assert_eq!(Value::Float(-42.0).as_i64(), Some(-42));
        assert_eq!(Value::Float(i64::MIN as f64).as_i64(), Some(i64::MIN));
    }

    #[test]
    fn hashmap_serializes_with_sorted_keys() {
        let mut m = HashMap::new();
        for k in ["zeta", "alpha", "mid"] {
            m.insert(k.to_string(), 1u32);
        }
        match m.to_value() {
            Value::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["alpha", "mid", "zeta"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
