//! Offline stand-in for `crossbeam`.
//!
//! Only the scoped-thread API this workspace uses is provided
//! (`crossbeam::scope` / `crossbeam::thread::scope`), implemented as a
//! thin adapter over `std::thread::scope` (stable since Rust 1.63,
//! after crossbeam's scoped threads were designed).

pub use thread::scope;

/// Scoped threads (`crossbeam::thread` flavoured API over the std one).
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to `scope` closures and spawned threads.
    ///
    /// `Copy` so a by-value copy can travel into each spawned thread,
    /// letting nested `spawn` calls mirror crossbeam's `|s| ... s.spawn`
    /// shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload, as crossbeam does).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope_copy = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope_copy)),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// enclosing stack frame. As in crossbeam, a panic in a spawned
    /// (unjoined) thread surfaces as `Err` carrying the panic payload
    /// instead of unwinding through the caller: `std::thread::scope`
    /// re-raises child panics on join, and this adapter catches that
    /// unwind so callers can degrade typed-ly rather than abort. (A
    /// panic in the scope closure itself is caught the same way — a
    /// strictly wider net than crossbeam's, which every caller here
    /// treats identically.)
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}
