//! Derive macros for the vendored `serde` stand-in.
//!
//! The build environment is offline, so `syn`/`quote` are unavailable:
//! the item is parsed directly from the `proc_macro` token stream and
//! the impls are emitted as source text. Supported shapes cover
//! everything this workspace derives on: named-field structs, tuple
//! structs (newtype included), unit structs, and enums with unit,
//! tuple, and struct variants. Generic items are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    /// struct S { f1, f2, ... }
    NamedStruct { name: String, fields: Vec<String> },
    /// struct S(T1, T2, ...);
    TupleStruct { name: String, arity: usize },
    /// struct S;
    UnitStruct { name: String },
    /// enum E { ... }
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' then bracket group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Count top-level comma-separated items in a token slice, tracking
/// `<...>` nesting so commas inside generic arguments don't split.
fn count_top_level_items(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1usize;
    let mut saw_any = false;
    let mut prev_dash = false;
    for (idx, t) in toks.iter().enumerate() {
        let was_dash = prev_dash;
        prev_dash = matches!(t, TokenTree::Punct(p) if p.as_char() == '-');
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            // the '>' of an `->` (fn-pointer return type) is not a
            // generic-argument close
            TokenTree::Punct(p) if p.as_char() == '>' && !was_dash => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                // a trailing comma does not open a new item
                if idx + 1 < toks.len() {
                    items += 1;
                }
            }
            _ => saw_any = true,
        }
    }
    if saw_any {
        items
    } else {
        0
    }
}

/// Parse `name: Type, ...` named-field lists, returning field names.
fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    let toks = group_tokens;
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let Some(TokenTree::Ident(id)) = toks.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // expect ':'
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field name, got {other:?}"),
        }
        // skip the type: scan to the next top-level comma
        let mut depth = 0i32;
        let mut prev_dash = false;
        while i < toks.len() {
            let was_dash = prev_dash;
            prev_dash = matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '-');
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                // `->` in fn-pointer types is not a generic close
                TokenTree::Punct(p) if p.as_char() == '>' && !was_dash => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);

    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic items are not supported (item `{name}`)");
        }
    }

    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream().into_iter().collect()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::TupleStruct {
                    name,
                    arity: count_top_level_items(&inner),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unsupported struct body: {other:?}"),
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = toks.get(i) else {
                panic!("serde_derive: expected enum body");
            };
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < body.len() {
                j = skip_attrs_and_vis(&body, j);
                let Some(TokenTree::Ident(id)) = body.get(j) else {
                    break;
                };
                let vname = id.to_string();
                j += 1;
                let kind = match body.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        VariantKind::Named(parse_named_fields(g.stream().into_iter().collect()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        VariantKind::Tuple(count_top_level_items(&inner))
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name: vname, kind });
                // skip to next top-level comma (covers discriminants, none expected)
                while j < body.len() {
                    if let TokenTree::Punct(p) = &body[j] {
                        if p.as_char() == ',' {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: expected `struct` or `enum`, got `{other}`"),
    }
}

/// Derive the vendored `serde::Serialize` (tree-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => {
            let body: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{body}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let body: String = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{body}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let pat = binds.join(", ");
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({pat}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),"
                            )
                        }
                        VariantKind::Named(fields) => {
                            let pat = fields.join(", ");
                            let items: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pat} }} => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize` (tree-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => {
            let body: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\")\
                         .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {body} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let body: String = (0..*arity)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({k})\
                         .ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Array(items) => \
                                 ::std::result::Result::Ok({name}({body})),\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::Error::invalid_type(\"array\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let body: String = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({k})\
                                         .ok_or_else(|| ::serde::Error::custom(\
                                         \"variant tuple too short\"))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{\n\
                                     ::serde::Value::Array(items) => \
                                         ::std::result::Result::Ok({name}::{vn}({body})),\n\
                                     other => ::std::result::Result::Err(\
                                         ::serde::Error::invalid_type(\"array\", other)),\n\
                                 }},"
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let body: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         payload.get_field(\"{f}\")\
                                         .ok_or_else(|| ::serde::Error::missing_field(\
                                         \"{f}\"))?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {body} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, payload) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => ::std::result::Result::Err(\
                                         ::serde::Error::custom(::std::format!(\
                                         \"unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::Error::invalid_type(\"enum\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
