//! End-to-end tests of the `coverage` command-line tool: every subcommand
//! is executed as a real subprocess (the binary Cargo built for this
//! test run) and its output is checked for the table structure and
//! invariants the tool promises.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_coverage"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn kcover_prints_result_table() {
    let (stdout, _, ok) = run(&[
        "kcover",
        "--n",
        "50",
        "--m",
        "2000",
        "--k",
        "4",
        "--budget",
        "2000",
        "--workload",
        "planted",
    ]);
    assert!(ok);
    assert!(stdout.contains("k-cover (Algorithm 3)"));
    assert!(stdout.contains("coverage/OPT"));
    assert!(stdout.contains("sampling p*"));
}

#[test]
fn setcover_and_multipass_run() {
    let (stdout, _, ok) = run(&[
        "setcover", "--n", "40", "--m", "1500", "--kstar", "5", "--lambda", "0.1", "--budget",
        "3000",
    ]);
    assert!(ok, "setcover failed: {stdout}");
    assert!(stdout.contains("Algorithm 5"));

    let (stdout, _, ok) = run(&[
        "multipass",
        "--n",
        "40",
        "--m",
        "1500",
        "--kstar",
        "5",
        "--rounds",
        "2",
        "--budget",
        "3000",
    ]);
    assert!(ok);
    assert!(stdout.contains("Algorithm 6"));
    assert!(stdout.contains("is cover"));
}

#[test]
fn solve_compares_solvers() {
    let (stdout, _, ok) = run(&[
        "solve",
        "--n",
        "30",
        "--m",
        "800",
        "--k",
        "3",
        "--workload",
        "planted",
    ]);
    assert!(ok);
    for name in ["lazy greedy", "local search", "stochastic", "parallel"] {
        assert!(stdout.contains(name), "missing solver row: {name}");
    }
}

#[test]
fn lemmas_all_hold() {
    let (stdout, _, ok) = run(&["lemmas", "--n", "20", "--m", "1000"]);
    assert!(ok);
    assert!(stdout.contains("Lemma 2.2"));
    assert!(stdout.contains("Theorem 2.7"));
    assert!(!stdout.contains("false"), "a lemma check failed:\n{stdout}");
}

#[test]
fn gen_formats_and_reload() {
    // sets format round-trips through --input.
    let (sets, _, ok) = run(&["gen", "--n", "10", "--m", "200", "--format", "sets"]);
    assert!(ok);
    assert!(sets.starts_with("# coverage instance"));
    // Per-process dir: concurrent test runs sharing TMPDIR must not race.
    let dir = std::env::temp_dir().join(format!("coverage-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inst.sets");
    std::fs::write(&path, &sets).unwrap();
    let (stdout, _, ok) = run(&[
        "kcover",
        "--k",
        "3",
        "--n",
        "0",
        "--m",
        "0",
        "--input",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "reload failed: {stdout}");
    assert!(stdout.contains("k-cover (Algorithm 3)"));
    let _ = std::fs::remove_dir_all(&dir);

    // tsv format: two tab-separated columns.
    let (tsv, _, ok) = run(&["gen", "--n", "5", "--m", "50", "--format", "tsv"]);
    assert!(ok);
    let first = tsv.lines().next().expect("nonempty");
    assert_eq!(first.split('\t').count(), 2);

    // json format parses.
    let (json, _, ok) = run(&["gen", "--n", "5", "--m", "50", "--format", "json"]);
    assert!(ok);
    assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
}

#[test]
fn dist_family_matches_machine_count_one() {
    let base = [
        "dist",
        "--n",
        "40",
        "--m",
        "1500",
        "--k",
        "3",
        "--budget",
        "2000",
        "--workload",
        "planted",
    ];
    let (one, _, ok1) = run(&[&base[..], &["--machines", "1"]].concat());
    let (four, _, ok4) = run(&[&base[..], &["--machines", "4"]].concat());
    assert!(ok1 && ok4);
    let family_line = |s: &str| {
        s.lines()
            .find(|l| l.contains("family"))
            .map(str::to_string)
            .expect("family row")
    };
    assert_eq!(family_line(&one), family_line(&four));
}

#[test]
fn dist_ingest_modes_select_the_same_family() {
    let base = [
        "dist",
        "--n",
        "40",
        "--m",
        "1500",
        "--k",
        "3",
        "--budget",
        "2000",
        "--workload",
        "planted",
        "--machines",
        "4",
        "--parallel",
        "2",
    ];
    let (pipelined, _, ok_p) = run(&[&base[..], &["--ingest", "pipelined"]].concat());
    let (barrier, _, ok_b) = run(&[&base[..], &["--ingest", "two-barrier"]].concat());
    assert!(ok_p && ok_b);
    let family_line = |s: &str| {
        s.lines()
            .find(|l| l.contains("family"))
            .map(str::to_string)
            .expect("family row")
    };
    assert_eq!(family_line(&pipelined), family_line(&barrier));
    assert!(pipelined.contains("Pipelined"));
    assert!(barrier.contains("TwoBarrier"));
    // An unknown mode is a usage error.
    let (_, _, ok_bad) = run(&[&base[..], &["--ingest", "bogus"]].concat());
    assert!(!ok_bad);
}

#[test]
fn kcover_dynamic_stays_within_the_approximation_bound() {
    // Deterministic acceptance check: on a churn workload the dynamic
    // cover's value must be within the paper's (1 − 1/e − ε) bound of
    // the insertion-only run on the surviving edge set. Fixed seed, so
    // the printed ratio is reproducible run to run.
    let (stdout, _, ok) = run(&[
        "kcover",
        "--n",
        "50",
        "--m",
        "2000",
        "--k",
        "4",
        "--budget",
        "3000",
        "--workload",
        "planted",
        "--dynamic",
        "--churn",
        "0.4",
    ]);
    assert!(ok, "dynamic kcover failed: {stdout}");
    assert!(stdout.contains("dynamic k-cover (churn pattern)"));
    assert!(stdout.contains("sample level"));
    let ratio: f64 = stdout
        .lines()
        .find(|l| l.contains("dynamic/insertion-only"))
        .and_then(|l| l.split_whitespace().last())
        .expect("ratio row")
        .parse()
        .expect("ratio parses");
    let eps = 0.25; // the CLI default
    let bound = 1.0 - 1.0 / std::f64::consts::E - eps;
    assert!(
        ratio >= bound,
        "dynamic/insertion-only ratio {ratio} below paper bound {bound}"
    );
}

#[test]
fn kcover_dynamic_adversarial_pattern_runs() {
    let (stdout, _, ok) = run(&[
        "kcover",
        "--n",
        "30",
        "--m",
        "1000",
        "--k",
        "3",
        "--dynamic",
        "--pattern",
        "adversarial",
    ]);
    assert!(ok, "adversarial dynamic kcover failed: {stdout}");
    assert!(stdout.contains("adversarial pattern"));
    assert!(stdout.contains("deletes"));
}

#[test]
fn gen_deletions_emits_signed_tsv() {
    let (tsv, _, ok) = run(&["gen", "--n", "5", "--m", "100", "--deletions", "0.5"]);
    assert!(ok);
    let mut inserts = 0usize;
    let mut deletes = 0usize;
    for line in tsv.lines() {
        let mut cols = line.split('\t');
        let op = cols.next().expect("op column");
        assert!(op == "+" || op == "-", "bad op column: {line}");
        assert_eq!(cols.count(), 2, "expected 3 columns: {line}");
        if op == "+" {
            inserts += 1;
        } else {
            deletes += 1;
        }
    }
    assert!(inserts > 0 && deletes > 0, "churn must emit both signs");
    assert!(inserts > deletes, "net size must stay positive");

    // Non-TSV formats cannot carry signs.
    let (_, stderr, ok) = run(&[
        "gen",
        "--n",
        "5",
        "--m",
        "50",
        "--deletions",
        "0.5",
        "--format",
        "json",
    ]);
    assert!(!ok);
    assert!(stderr.contains("only supports --format tsv"));
}

#[test]
fn bad_usage_exits_nonzero() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = run(&["kcover", "--n", "10"]);
    assert!(!ok);
    assert!(stderr.contains("missing required flag"));

    let (_, stderr, ok) = run(&["gen", "--n", "5", "--m", "50", "--format", "xml"]);
    assert!(!ok);
    assert!(stderr.contains("unknown format"));
}
