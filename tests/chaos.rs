//! Chaos suite: randomized, **seeded** fault schedules thrown at every
//! fault-hardened layer of the runtime. The contract under test is the
//! robustness story the merge-composability of the `H≤n` sketch buys:
//! any shard (or journal prefix) can be rebuilt bit-identically, so a
//! run under injected crashes, hangs, delays, and corrupted frames must
//! either complete **bit-identical to the fault-free reference** or
//! fail with a typed error — never hang, never panic, never return a
//! torn answer.
//!
//! Every schedule derives from a small integer seed, so a CI failure
//! reproduces locally with the same seed. The default matrix covers
//! `CHAOS_SEEDS` (default 8) seeds per test; CI can widen it via the
//! environment variable without touching the code.

use std::time::{Duration, Instant};

use coverage_suite::prelude::*;

/// Per-run wall-clock ceiling. Generous for slow CI machines, but an
/// actual hang (the bug class this suite exists for) blows well past it.
const RUN_BUDGET: Duration = Duration::from_secs(60);

fn seed_matrix() -> Vec<u64> {
    let n: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .max(8);
    (1..=n).collect()
}

fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_coverage"), ["worker".to_string()])
}

fn chaos_stream(seed: u64) -> VecStream {
    let inst = planted_k_cover(24, 2_000, 3, 120, seed);
    let mut stream = VecStream::from_instance(&inst.instance);
    ArrivalOrder::Random(seed ^ 0xC4A0).apply(stream.edges_mut());
    stream
}

fn inserts(range: std::ops::Range<u64>) -> Vec<SignedEdge> {
    range
        .map(|e| SignedEdge::insert(Edge::new((e % 7) as u32, e * 13 % 900)))
        .collect()
}

/// Random fault schedules against the multiprocess executor: ~a third
/// of shards draw a crash, hang, delay, or corrupt-reply fault, chosen
/// deterministically from the seed. Every run must finish inside the
/// budget with the exact fault-free family.
#[test]
fn process_runner_survives_randomized_fault_schedules() {
    for seed in seed_matrix() {
        let stream = chaos_stream(seed);
        let cfg = DistConfig::new(6, 3, 0.3, seed).with_sizing(SketchSizing::Budget(1_200));
        let reference = distributed_k_cover(&stream, &cfg);
        let plan = FaultPlan::new(seed).with_random_pct(35);
        let start = Instant::now();
        let run = ProcessRunner::new(cfg, worker_command(), 3)
            .with_fault_plan(plan)
            .with_job_timeout(Duration::from_millis(500))
            .run(&stream);
        let elapsed = start.elapsed();
        assert!(
            elapsed < RUN_BUDGET,
            "seed {seed}: chaos run took {elapsed:?} — the reaper failed to bound a stall"
        );
        // Retry + reshard + inline fallback means the run completes even
        // when every worker misbehaves; an Err would still be typed, but
        // with survivors-or-inline recovery it must not happen at all.
        let run = run.unwrap_or_else(|e| panic!("seed {seed}: typed failure {e}"));
        assert_eq!(
            run.family, reference.family,
            "seed {seed}: fault recovery changed the selected cover"
        );
        assert_eq!(run.merged_edges, reference.merged_edges);
    }
}

/// The adversarial worst case, explicitly scheduled: a crash, an
/// infinite hang, a corrupted reply, and a delayed shard all in one
/// run, on every seed's workload.
#[test]
fn process_runner_survives_the_combined_worst_case_schedule() {
    for seed in seed_matrix() {
        let stream = chaos_stream(seed ^ 0x5107);
        let cfg = DistConfig::new(8, 3, 0.3, seed).with_sizing(SketchSizing::Budget(1_200));
        let reference = distributed_k_cover(&stream, &cfg);
        let plan = FaultPlan::new(seed)
            .with_fault(0, Fault::Crash)
            .with_fault(1, Fault::Hang)
            .with_fault(2, Fault::CorruptReply)
            .with_fault(3, Fault::Delay(25));
        let start = Instant::now();
        let run = ProcessRunner::new(cfg, worker_command(), 3)
            .with_fault_plan(plan)
            .with_job_timeout(Duration::from_millis(500))
            .run(&stream)
            .unwrap_or_else(|e| panic!("seed {seed}: typed failure {e}"));
        assert!(start.elapsed() < RUN_BUDGET, "seed {seed}: run over budget");
        assert_eq!(run.family, reference.family, "seed {seed}: family diverged");
        assert!(
            run.workers_lost >= 1 && run.deadline_reaps >= 1 && run.proto_faults >= 1,
            "seed {seed}: the schedule must actually exercise crash + hang + corrupt \
             (lost={} reaps={} proto={})",
            run.workers_lost,
            run.deadline_reaps,
            run.proto_faults
        );
    }
}

/// Network faults layered over randomized worker faults against the
/// TCP socket executor: a mid-stream connection drop, a 300ms stall
/// (suspect → recover), and a duplicated chunk on every seed's
/// workload, plus ~a quarter of the remaining shards drawing a random
/// crash/hang/delay/corrupt. The family must still be bit-identical to
/// the fault-free reference, inside the budget.
#[test]
fn socket_runner_survives_network_faults_over_worker_faults() {
    for seed in seed_matrix() {
        let stream = chaos_stream(seed ^ 0x50C4);
        let cfg = DistConfig::new(6, 3, 0.3, seed).with_sizing(SketchSizing::Budget(1_200));
        let reference = distributed_k_cover(&stream, &cfg);
        let plan = FaultPlan::new(seed)
            .with_random_pct(25)
            .with_fault(0, Fault::DropConn)
            .with_fault(1, Fault::Stall(300))
            .with_fault(2, Fault::DupChunk);
        let start = Instant::now();
        let run = SocketRunner::new(cfg, worker_command(), 3)
            .with_fault_plan(plan)
            .with_job_timeout(Duration::from_millis(800))
            .with_heartbeats(
                Duration::from_millis(40),
                Duration::from_millis(150),
                Duration::from_secs(2),
            )
            .with_join_grace(Duration::from_millis(300))
            .run(&stream);
        let elapsed = start.elapsed();
        assert!(
            elapsed < RUN_BUDGET,
            "seed {seed}: socket chaos run took {elapsed:?} — liveness failed to bound a stall"
        );
        let run = run.unwrap_or_else(|e| panic!("seed {seed}: typed failure {e}"));
        assert_eq!(
            run.family, reference.family,
            "seed {seed}: network-fault recovery changed the selected cover"
        );
        assert_eq!(run.merged_edges, reference.merged_edges);
        assert!(
            run.stats.conn_drops_injected >= 1
                && run.stats.stalls_injected >= 1
                && run.stats.chunk_dups_injected >= 1,
            "seed {seed}: the schedule must actually exercise drop + stall + dup"
        );
        assert!(
            run.stats.shards_requeued >= 1 || run.stats.shards_built_inline >= 1,
            "seed {seed}: the severed shard must be rebuilt somewhere"
        );
    }
}

/// Worker-pool churn: the only initial worker has its connection
/// severed mid-stream, and a late worker dialing in ~30ms later must be
/// admitted to the registry and finish the run — same family as the
/// fault-free reference, on every seed.
#[test]
fn socket_late_joiner_rescues_a_run_that_lost_every_worker() {
    for seed in seed_matrix() {
        let stream = chaos_stream(seed ^ 0x1A7E);
        let cfg = DistConfig::new(6, 3, 0.3, seed).with_sizing(SketchSizing::Budget(1_200));
        let reference = distributed_k_cover(&stream, &cfg);
        let start = Instant::now();
        let run = SocketRunner::new(cfg, worker_command(), 1)
            .with_fault_plan(FaultPlan::new(seed).with_fault(0, Fault::DropConn))
            .with_late_worker_after(Duration::from_millis(30))
            .run(&stream)
            .unwrap_or_else(|e| panic!("seed {seed}: typed failure {e}"));
        assert!(start.elapsed() < RUN_BUDGET, "seed {seed}: run over budget");
        assert_eq!(run.family, reference.family, "seed {seed}: family diverged");
        assert!(
            run.stats.workers_lost >= 1,
            "seed {seed}: the drop must sever the only initial worker"
        );
        assert!(
            run.stats.late_joiners >= 1,
            "seed {seed}: the late worker must be admitted mid-run"
        );
        let late_shards: usize = run
            .stats
            .workers
            .iter()
            .filter(|w| w.late_joiner)
            .map(|w| w.shards_completed)
            .sum();
        assert!(
            late_shards + run.stats.shards_built_inline >= 1,
            "seed {seed}: the requeued work must land on the late joiner (or inline)"
        );
    }
}

/// A lossy reduce transport that flips one bit in a seeded fraction of
/// shipped frames: every corruption must be caught by the frame
/// checksum and retransmitted, leaving the merged sketch bit-identical.
#[test]
fn tree_reduce_over_a_corrupting_transport_is_bit_identical() {
    for seed in seed_matrix() {
        let params = SketchParams::with_budget(8, 3, 0.4, 150);
        let mut single = ThresholdSketch::new(params, seed);
        let mut shards: Vec<ThresholdSketch> =
            (0..6).map(|_| ThresholdSketch::new(params, seed)).collect();
        for (i, s) in (0..8u32)
            .flat_map(|s| (0..600u64).map(move |e| (s, e)))
            .enumerate()
        {
            let edge = Edge::new(s.0, s.1 * 11 % 700);
            single.update(edge);
            shards[i % 6].update(edge);
        }
        let faulty = FaultyTransport::new(seed, 60);
        let (merged, _) = tree_reduce_via(shards, 2, &faulty);
        let key = |s: &ThresholdSketch| {
            let mut v: Vec<u64> = s.retained().map(|(k, _, _)| k).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&merged), key(&single), "seed {seed}: reduce diverged");
        assert_eq!(
            faulty.detected(),
            faulty.retransmits(),
            "seed {seed}: every detected corruption is retransmitted exactly once"
        );
    }
}

/// Ingest-thread crashes at seeded points in the update stream: the
/// engine must freeze the last published epoch (typed `Closed` on new
/// writes, never a torn answer), and a journal replay pinned to that
/// epoch must reproduce it bit-identically.
#[test]
fn serve_engine_crash_recovery_is_bit_identical_across_seeds() {
    for seed in seed_matrix() {
        let batch = 40 + (seed * 13) % 80;
        let panic_after = 100 + (seed * 37) % 250;
        let config = ServeConfig::bank_ladder(7, 3, 0.4, 600, seed)
            .with_publish_every(batch)
            .with_journal(true)
            .with_ingest_panic_after(panic_after);
        let engine = ServeEngine::start(config.clone());
        let mut handle = engine.query_handle();
        let start = Instant::now();
        let mut submitted = 0u64;
        let closed = loop {
            if submitted >= 600 {
                break false;
            }
            match engine.submit(inserts(submitted..submitted + batch)) {
                Ok(()) => submitted += batch,
                Err(ServeError::Closed) => break true,
                Err(e) => panic!("seed {seed}: unexpected error {e}"),
            }
            assert!(start.elapsed() < RUN_BUDGET, "seed {seed}: ingest stalled");
        };
        // The crash fires inside the stream for every seed in the
        // matrix; drain the race where the queue accepted the final
        // batch before the thread died.
        if !closed {
            while !engine.is_degraded() && start.elapsed() < RUN_BUDGET {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert!(
            engine.is_degraded(),
            "seed {seed}: injected crash never fired"
        );
        // The frozen snapshot still answers queries (stale, not torn)…
        let pre = handle.snapshot();
        let frozen = answer_query(&pre, 2);
        assert_eq!(frozen.updates_applied, pre.updates_applied);
        // …and a journal replay of exactly that prefix rebuilds it
        // bit-identically, pinned to the pre-crash epoch number.
        let journal = engine.journal_snapshot();
        assert!(journal.len() as u64 >= pre.updates_applied, "seed {seed}");
        let recovered = ServeEngine::recover_from_journal(
            config.clone(),
            journal[..pre.updates_applied as usize].to_vec(),
            pre.epoch,
        );
        let mut rh = recovered.query_handle();
        assert!(
            rh.snapshot().content_eq(&pre),
            "seed {seed}: journal replay diverged from the pre-crash epoch"
        );
        assert!(
            answer_query(&rh.snapshot(), 2).bit_eq(&frozen),
            "seed {seed}: recovered answers must be bit-identical"
        );
        // The recovered engine is live again: it keeps ingesting past
        // the original crash point.
        recovered
            .submit(inserts(0..batch))
            .unwrap_or_else(|e| panic!("seed {seed}: recovered engine rejected writes: {e}"));
        let fin = recovered.finish();
        assert!(
            !fin.stats.degraded,
            "seed {seed}: recovery left the engine degraded"
        );
        let _ = engine.finish();
    }
}

/// Deadline-bounded queries across seeds: a zero deadline is refused
/// with a typed error (never a partial family), and a completed bounded
/// query is bit-identical to the unbounded one.
#[test]
fn query_deadlines_never_tear_answers() {
    for seed in seed_matrix() {
        let config = ServeConfig::bank_ladder(7, 4, 0.4, 600, seed).with_publish_every(64);
        let engine = ServeEngine::start(config);
        engine.submit(inserts(0..320)).unwrap();
        engine.flush().unwrap();
        let mut handle = engine.query_handle();
        let snap = handle.snapshot();
        assert!(matches!(
            answer_query_deadline(&snap, 2, Duration::ZERO),
            Err(ServeError::DeadlineExceeded)
        ));
        let bounded = answer_query_deadline(&snap, 2, Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("seed {seed}: generous deadline missed: {e}"));
        assert!(
            bounded.bit_eq(&answer_query(&snap, 2)),
            "seed {seed}: a completed bounded query must match the unbounded one"
        );
        let _ = engine.finish();
    }
}
