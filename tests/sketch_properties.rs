//! Property-based tests (proptest) for the cross-crate invariants the
//! paper's correctness rests on.

use proptest::prelude::*;

use coverage_suite::core::{Edge, SetId};
use coverage_suite::hash::UnitHash;
use coverage_suite::prelude::*;
use coverage_suite::sketch::SketchParams;

/// Arbitrary small edge list over bounded set/element universes.
fn edges_strategy(max_sets: u32, max_elem: u64) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec(
        (0..max_sets, 0..max_elem).prop_map(|(s, e)| Edge::new(s, e)),
        0..400,
    )
}

/// The unrolled batch mixer agrees with the scalar loop and the
/// one-key [`UnitHash::hash`] on every remainder length around the
/// unroll width — exhaustively over `0..=2×BATCH_LANES`, several
/// seeds, with non-trivial key patterns. This is the deterministic
/// anchor for the proptest below; together they are the bit-identity
/// contract the `BENCH_8` vectorized ingest path rests on.
#[test]
fn hash_batch_matches_scalar_on_all_remainder_lengths() {
    for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF, u64::MAX] {
        let h = UnitHash::new(seed);
        for len in 0..=2 * UnitHash::BATCH_LANES {
            let keys: Vec<u64> = (0..len as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed))
                .collect();
            let mut unrolled = Vec::new();
            let mut scalar = Vec::new();
            h.hash_batch(keys.iter().copied(), &mut unrolled);
            h.hash_batch_scalar(keys.iter().copied(), &mut scalar);
            assert_eq!(unrolled, scalar, "seed {seed} len {len}");
            let one_by_one: Vec<u64> = keys.iter().map(|&k| h.hash(k)).collect();
            assert_eq!(unrolled, one_by_one, "seed {seed} len {len}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random batches across seeds: the unrolled mixer is bit-identical
    /// to the scalar loop on arbitrary (duplicate-heavy, extreme-value)
    /// key sequences, including lengths far past the unroll width.
    #[test]
    fn hash_batch_matches_scalar_on_random_batches(
        keys in prop::collection::vec(0u64..u64::MAX, 0..300),
        seed in 0u64..1000,
    ) {
        let h = UnitHash::new(seed);
        let mut unrolled = Vec::new();
        let mut scalar = Vec::new();
        h.hash_batch(keys.iter().copied(), &mut unrolled);
        h.hash_batch_scalar(keys.iter().copied(), &mut scalar);
        prop_assert_eq!(&unrolled, &scalar);
        let one_by_one: Vec<u64> = keys.iter().map(|&k| h.hash(k)).collect();
        prop_assert_eq!(unrolled, one_by_one);
    }

    /// The grouped/prefetched probe path is bit-identical to the scalar
    /// per-edge probe sequence on a single sketch: same retained
    /// content, same counters, same acceptance bound, for any stream
    /// and any batch size (including 1 and sizes straddling the probe
    /// group width).
    #[test]
    fn sketch_batch_probe_matches_scalar(
        edges in edges_strategy(8, 120),
        seed in 0u64..300,
        batch in 1usize..40,
    ) {
        let params = SketchParams::with_budget(8, 2, 0.4, 28);
        let stream = VecStream::new(8, edges);
        let mut vectorized = ThresholdSketch::new(params, seed);
        vectorized.consume_batched(&stream, batch);
        let mut scalar = ThresholdSketch::new(params, seed);
        scalar.consume_batched_scalar(&stream, batch);
        let mut per_edge = ThresholdSketch::new(params, seed);
        per_edge.consume(&stream);
        prop_assert_eq!(vectorized.acceptance_bound(), scalar.acceptance_bound());
        prop_assert_eq!(vectorized.counters(), scalar.counters());
        prop_assert_eq!(vectorized.canonical_content(), scalar.canonical_content());
        prop_assert_eq!(vectorized.acceptance_bound(), per_edge.acceptance_bound());
        prop_assert_eq!(vectorized.counters(), per_edge.counters());
        prop_assert_eq!(vectorized.canonical_content(), per_edge.canonical_content());
    }

    /// Bank-level bit-identity: the batched vectorized ingest (shared
    /// hash pass + bank-wide bound pre-filter + grouped probes), the
    /// batched scalar hybrid, and the frozen per-edge scalar engine all
    /// retain identical content on every guess — the `BENCH_8`
    /// vectorization-equivalence contract, over random streams, seeds,
    /// and batch sizes.
    #[test]
    fn bank_ingest_paths_bit_identical(
        edges in edges_strategy(10, 150),
        seed in 0u64..300,
        batch in 1usize..40,
    ) {
        let guesses: Vec<SketchParams> = (0..3)
            .map(|g| SketchParams::with_budget(10, 1 << g, 0.4, 24 + 8 * g))
            .collect();
        let stream = VecStream::new(10, edges);
        let mut vectorized = SketchBank::new(guesses.iter().copied(), seed);
        vectorized.consume_batched(&stream, batch);
        let mut hybrid = SketchBank::new(guesses.iter().copied(), seed);
        hybrid.consume_batched_scalar(&stream, batch);
        let mut per_edge = SketchBank::new(guesses.iter().copied(), seed);
        per_edge.consume_scalar(&stream);
        for ((v, h), p) in vectorized
            .sketches()
            .iter()
            .zip(hybrid.sketches())
            .zip(per_edge.sketches())
        {
            prop_assert_eq!(v.acceptance_bound(), h.acceptance_bound());
            prop_assert_eq!(v.counters(), h.counters());
            prop_assert_eq!(v.canonical_content(), h.canonical_content());
            prop_assert_eq!(v.acceptance_bound(), p.acceptance_bound());
            prop_assert_eq!(v.counters(), p.counters());
            prop_assert_eq!(v.canonical_content(), p.canonical_content());
        }
    }

    /// The sketch's retained elements are exactly the arrived elements
    /// whose hash clears the final acceptance bound — the `H'_{p*}`
    /// prefix property — for *any* edge multiset and arrival order.
    #[test]
    fn retained_set_is_hash_prefix(edges in edges_strategy(8, 64), seed in 0u64..1000) {
        let params = SketchParams::with_budget(8, 2, 0.5, 24);
        let stream = VecStream::new(8, edges.clone());
        let sketch = ThresholdSketch::from_stream(params, seed, &stream);
        let h = UnitHash::new(seed);
        let bound = sketch.acceptance_bound();
        let retained: std::collections::HashSet<u64> =
            sketch.retained().map(|(k, _, _)| k).collect();
        let arrived: std::collections::HashSet<u64> =
            edges.iter().map(|e| e.element.0).collect();
        for &el in &arrived {
            prop_assert_eq!(
                retained.contains(&el),
                h.hash(el) <= bound,
                "element {} hash {:x} bound {:x}", el, h.hash(el), bound
            );
        }
        // Nothing retained that never arrived.
        for &el in &retained {
            prop_assert!(arrived.contains(&el));
        }
    }

    /// Sketch edge count never exceeds its cap, and per-element degree
    /// never exceeds the degree cap.
    #[test]
    fn budget_and_cap_hold(edges in edges_strategy(10, 200), seed in 0u64..1000) {
        let params = SketchParams::with_budget(10, 3, 0.4, 30);
        let stream = VecStream::new(10, edges);
        let sketch = ThresholdSketch::from_stream(params, seed, &stream);
        prop_assert!(sketch.edges_stored() <= params.max_edges());
        for (_, _, sets) in sketch.retained() {
            prop_assert!(sets.len() <= params.degree_cap);
            // Dedup: no set appears twice for one element.
            let mut v = sets.to_vec();
            v.sort_unstable();
            v.dedup();
            prop_assert_eq!(v.len(), sets.len());
        }
    }

    /// The sketch content is invariant under arrival-order permutation
    /// (up to which capped edges survive for truncated elements — so we
    /// compare retained element sets and total element counts, plus full
    /// edge sets when no element hit the cap).
    #[test]
    fn order_invariance(edges in edges_strategy(6, 80), seed in 0u64..500, shuffle in 0u64..500) {
        let params = SketchParams::with_budget(6, 1, 0.5, 40);
        let a = ThresholdSketch::from_stream(params, seed, &VecStream::new(6, edges.clone()));
        let mut shuffled = edges;
        ArrivalOrder::Random(shuffle).apply(&mut shuffled);
        let b = ThresholdSketch::from_stream(params, seed, &VecStream::new(6, shuffled));
        let mut ka: Vec<u64> = a.retained().map(|(k, _, _)| k).collect();
        let mut kb: Vec<u64> = b.retained().map(|(k, _, _)| k).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        prop_assert_eq!(ka, kb);
        let truncated_a = a.retained().any(|(_, _, s)| s.len() >= params.degree_cap);
        if !truncated_a {
            prop_assert_eq!(a.edges_stored(), b.edges_stored());
        }
    }

    /// Greedy k-cover on any instance is within (1−1/e) of the exact
    /// optimum (Nemhauser–Wolsey–Fisher), and never returns an invalid
    /// family.
    #[test]
    fn greedy_respects_bound(edges in edges_strategy(8, 24), k in 1usize..5) {
        let inst = CoverageInstance::from_edges(8, edges);
        let trace = lazy_greedy_k_cover(&inst, k);
        coverage_suite::core::validate::check_k_cover(&inst, &trace.family(), k).unwrap();
        let (_, opt) = exact_k_cover(&inst, k);
        let greedy = trace.coverage();
        prop_assert!(greedy <= opt);
        prop_assert!(
            greedy as f64 >= (1.0 - 1.0 / std::f64::consts::E) * opt as f64 - 1e-9,
            "greedy {} vs opt {}", greedy, opt
        );
    }

    /// Streaming k-cover always returns a well-formed family and a space
    /// report within its configured bounds, whatever the stream.
    #[test]
    fn streaming_kcover_always_valid(edges in edges_strategy(12, 300), seed in 0u64..100) {
        let stream = VecStream::new(12, edges);
        let cfg = KCoverConfig::new(3, 0.3, seed).with_sizing(SketchSizing::Budget(50));
        let res = k_cover_streaming(&stream, &cfg);
        let inst = coverage_suite::stream::materialize(&stream);
        coverage_suite::core::validate::check_k_cover(&inst, &res.family, 3).unwrap();
        let params = cfg.sketch_params(12);
        prop_assert!(res.space.peak_edges <= (params.max_edges() + params.degree_cap + 1) as u64);
    }

    /// The outlier set-cover result, when verified, covers the required
    /// fraction of the *sketch* by construction; on the full instance it
    /// covers at least `1 − λ − 13ε_sketch` in these budget regimes.
    #[test]
    fn outlier_cover_fraction(seed in 0u64..30) {
        let planted = planted_set_cover(16, 600, 3, 30, seed);
        let stream = VecStream::from_instance(&planted.instance);
        let cfg = OutlierConfig::new(0.15, 0.5, seed).with_sizing(SketchSizing::Budget(2_500));
        let res = set_cover_outliers(&stream, &cfg);
        prop_assert!(res.verified);
        let frac = planted.instance.coverage_fraction(&res.family);
        prop_assert!(frac >= 1.0 - 0.15 - 0.10, "fraction {}", frac);
    }

    /// KMV union estimates track true union sizes within ~4 standard
    /// errors across arbitrary splits of the universe.
    #[test]
    fn kmv_union_estimates(split in 1u64..5000, total in 5001u64..20000, seed in 0u64..50) {
        use coverage_suite::hash::KmvSketch;
        let t = 258;
        let h = UnitHash::new(seed);
        let mut a = KmvSketch::new(t, h);
        let mut b = KmvSketch::new(t, h);
        for e in 0..split { a.insert(e); }
        for e in split/2..total { b.insert(e); }
        let merged = KmvSketch::merged([&a, &b].into_iter());
        let est = merged.estimate();
        let rse = 1.0 / ((t - 2) as f64).sqrt();
        prop_assert!(
            (est - total as f64).abs() <= 5.0 * rse * total as f64 + 2.0,
            "estimate {} truth {}", est, total
        );
    }

    /// All arrival orders are permutations: same multiset before/after.
    #[test]
    fn orders_are_permutations(edges in edges_strategy(6, 60), seed in 0u64..100) {
        for order in [
            ArrivalOrder::Random(seed),
            ArrivalOrder::SetGrouped(seed),
            ArrivalOrder::ElementGrouped(seed),
            ArrivalOrder::ByHashDesc(seed),
        ] {
            let mut permuted = edges.clone();
            order.apply(&mut permuted);
            let mut x = edges.clone();
            let mut y = permuted;
            x.sort();
            y.sort();
            prop_assert_eq!(x, y);
        }
    }

    /// `restrict_elements` (the residual-graph primitive of Algorithm 6)
    /// never invents edges and preserves set ids.
    #[test]
    fn residual_is_subgraph(edges in edges_strategy(6, 50), cut in 0u64..50) {
        let inst = CoverageInstance::from_edges(6, edges);
        let residual = inst.restrict_elements(|e| e.0 >= cut);
        prop_assert_eq!(residual.num_sets(), inst.num_sets());
        prop_assert!(residual.num_edges() <= inst.num_edges());
        for s in residual.set_ids() {
            let orig: std::collections::HashSet<u64> =
                inst.set_elements(s).map(|e| e.0).collect();
            for e in residual.set_elements(s) {
                prop_assert!(e.0 >= cut);
                prop_assert!(orig.contains(&e.0));
            }
        }
        let _ = SetId(0);
    }
}
