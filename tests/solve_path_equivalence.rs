//! Property tests pinning the zero-rebuild solve path of ISSUE 5: the
//! exact decremental **bucket-queue greedy** must be *output-identical*
//! — full trace equality (selected sets, per-step gains, cumulative
//! coverage) — to the lazy (Minoux) engine and to the naive rescanning
//! greedy, on every representation the pipeline solves:
//!
//! * the owned [`CoverageInstance`] the engines originally ran on,
//! * a [`CsrInstance`] packed from it (`from_instance`),
//! * the sketch-backed CSR views ([`ThresholdSketch::csr_view`] /
//!   [`DynamicSketch::csr_view`]) versus the per-query
//!   `instance()` rebuilds they retire.
//!
//! The contract is exercised across the three workload generators
//! (uniform / zipf / planted), a spread of `k` values, and the budgeted
//! / full set-cover stopping rules that Algorithms 4–6 use.

use proptest::prelude::*;

use coverage_suite::core::offline::GreedyTrace;
use coverage_suite::prelude::*;

/// Full trace equality: the engines must agree step for step.
fn assert_traces_equal(a: &GreedyTrace, b: &GreedyTrace, ctx: &str) {
    assert_eq!(a.steps, b.steps, "{ctx}: full trace must coincide");
}

/// The three workload generators of the experiment suite.
fn generator_instance(generator: u8, seed: u64) -> CoverageInstance {
    let n = 26;
    match generator % 3 {
        0 => uniform_instance(n, 1_200, 70, seed),
        1 => zipf_instance(n, 1_200, 0.7, 1.1, 260, seed),
        _ => planted_k_cover(n, 1_200, 4, 80, seed).instance,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// bucket == lazy == naive on the owned instance AND on its packed
    /// CSR twin, for every generator × k.
    #[test]
    fn bucket_equals_lazy_equals_naive(generator in 0u8..3, seed in 1u64..500, k in 0usize..27) {
        let inst = generator_instance(generator, seed);
        let csr = CsrInstance::from_instance(&inst);
        let naive = greedy_k_cover(&inst, k);
        let lazy = lazy_greedy_k_cover(&inst, k);
        let bucket = bucket_greedy_k_cover(&inst, k);
        let lazy_csr = lazy_greedy_k_cover(&csr, k);
        let bucket_csr = bucket_greedy_k_cover(&csr, k);
        let ctx = format!("gen={generator} seed={seed} k={k}");
        assert_traces_equal(&lazy, &naive, &format!("{ctx} lazy/naive"));
        assert_traces_equal(&bucket, &lazy, &format!("{ctx} bucket/lazy"));
        assert_traces_equal(&lazy_csr, &lazy, &format!("{ctx} lazy-csr/lazy"));
        assert_traces_equal(&bucket_csr, &lazy, &format!("{ctx} bucket-csr/lazy"));
    }

    /// The budgeted (Algorithm 4) and full set-cover (Algorithm 6)
    /// stopping rules agree between the engines too.
    #[test]
    fn budgeted_and_set_cover_rules_agree(generator in 0u8..3, seed in 1u64..500) {
        let inst = generator_instance(generator, seed);
        let csr = CsrInstance::from_instance(&inst);
        let ctx = format!("gen={generator} seed={seed}");
        assert_traces_equal(
            &bucket_greedy_set_cover(&inst),
            &greedy_set_cover(&inst),
            &format!("{ctx} set-cover"),
        );
        assert_traces_equal(
            &bucket_greedy_set_cover(&csr),
            &greedy_set_cover(&inst),
            &format!("{ctx} set-cover csr"),
        );
        for (required, max_sets) in [(200usize, 5usize), (900, 12), (1_200, 26)] {
            let a = bucket_greedy_budgeted_cover(&csr, required, max_sets);
            let b = greedy_budgeted_cover(&inst, required, max_sets);
            assert_traces_equal(
                &a.trace,
                &b.trace,
                &format!("{ctx} budgeted {required}/{max_sets}"),
            );
            prop_assert_eq!(a.satisfied, b.satisfied);
        }
    }

    /// The sketch-backed CSR view must solve identically to the owned
    /// `instance()` rebuild it retires — the end-to-end zero-rebuild
    /// contract behind `solve_on_sketch` and both dist executors.
    #[test]
    fn sketch_csr_view_solves_like_instance_rebuild(
        generator in 0u8..3,
        seed in 1u64..200,
        budget in 200usize..2_000,
    ) {
        let inst = generator_instance(generator, seed);
        let mut stream = VecStream::from_instance(&inst);
        ArrivalOrder::Random(seed ^ 0xA5).apply(stream.edges_mut());
        let params = SketchParams::with_budget(26, 4, 0.4, budget);
        let sketch = ThresholdSketch::from_stream(params, seed ^ 0x77, &stream);
        let owned = sketch.instance();
        let view = sketch.csr_view();
        prop_assert_eq!(view.num_edges(), owned.num_edges());
        prop_assert_eq!(view.num_elements(), owned.num_elements());
        for k in [1usize, 4, 13] {
            let a = bucket_greedy_k_cover(&view, k);
            let b = lazy_greedy_k_cover(&owned, k);
            assert_traces_equal(&a, &b, &format!("gen={generator} seed={seed} budget={budget} k={k}"));
        }
    }

    /// Same contract for the dynamic sketch: the recovered sample's CSR
    /// view (sort-based compaction + canonical degree cap) solves
    /// identically to the map-built `instance(&sample)`.
    #[test]
    fn dynamic_csr_view_solves_like_instance_rebuild(
        generator in 0u8..3,
        seed in 1u64..100,
        churn in 0.1f64..0.8,
    ) {
        let inst = generator_instance(generator, seed);
        let w = churn_workload(&inst, churn, seed ^ 0x3C);
        let params = DynamicSketchParams::new(SketchParams::with_budget(26, 4, 0.4, 1_500));
        let sketch = DynamicSketch::from_stream(params, seed ^ 0x11, &w.stream);
        let Some(sample) = sketch.recover() else {
            // Too dense for the level budget at this churn: nothing to
            // compare (the drivers would panic with the canonical
            // diagnostic; recovery itself is covered elsewhere).
            return Ok(());
        };
        let owned = sketch.instance(&sample);
        let view = sketch.csr_view(&sample);
        prop_assert_eq!(view.num_edges(), owned.num_edges());
        prop_assert_eq!(view.num_elements(), owned.num_elements());
        for k in [1usize, 4, 13] {
            let a = bucket_greedy_k_cover(&view, k);
            let b = lazy_greedy_k_cover(&owned, k);
            assert_traces_equal(&a, &b, &format!("gen={generator} seed={seed} churn={churn:.2} k={k}"));
        }
    }
}

/// Deterministic end-to-end spot check: the rewired drivers still pick
/// the exact families the lazy path picked (the rewiring is a pure
/// engine swap, not a behavior change).
#[test]
fn rewired_drivers_match_lazy_reference_families() {
    let planted = planted_k_cover(30, 3_000, 4, 100, 7);
    let mut stream = VecStream::from_instance(&planted.instance);
    ArrivalOrder::Random(3).apply(stream.edges_mut());
    let cfg = KCoverConfig::new(4, 0.3, 11).with_sizing(SketchSizing::Budget(3_000));
    let res = k_cover_streaming(&stream, &cfg);
    // Reference: the same sketch, solved on the owned rebuild with lazy.
    let params = cfg.sketch_params(30);
    let sketch = ThresholdSketch::from_stream(params, cfg.seed, &stream);
    let reference = lazy_greedy_k_cover(&sketch.instance(), 4).family();
    assert_eq!(res.family, reference);
}
