//! The TCP socket executor's determinism contract, exercised with
//! **real worker processes over real sockets**: the `coverage` binary
//! Cargo built for this test run, self-spawned in its hidden
//! `worker --connect` mode against a loopback coordinator. For the same
//! `DistConfig`, [`SocketRunner`] must select the identical cover as
//! the sequential simulation and the pipe-based [`ProcessRunner`] —
//! including runs where connections are severed mid-stream (the shard
//! requeue path), stalled without closing (the suspect → recover path),
//! or fed duplicated chunks (rejected by index), down to the degenerate
//! case where every worker dies and the coordinator builds inline. Late
//! joiners must be admitted mid-run and handed queued shards.

use std::time::Duration;

use proptest::prelude::*;

use coverage_suite::data::{planted_k_cover, uniform_instance, zipf_instance};
use coverage_suite::dist::fault::MAX_DELAY_MS;
use coverage_suite::prelude::*;

fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_coverage"), ["worker".to_string()])
}

/// Build a seeded stream from one of the three generator families.
fn generated_stream(generator: u8, n: usize, m: u64, k: usize, seed: u64) -> VecStream {
    let inst = match generator % 3 {
        0 => uniform_instance(n, m, (m / 20).max(8) as usize, seed),
        1 => zipf_instance(n, m, 0.6, 1.05, (m / 8).max(8) as usize, seed),
        _ => planted_k_cover(n, m, k.max(1), (m / 16).max(4) as usize, seed).instance,
    };
    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(seed ^ 0xA5).apply(stream.edges_mut());
    stream
}

/// A signed update stream: every edge inserted, a deterministic subset
/// deleted again.
fn signed_updates(stream: &VecStream, churn_seed: u64) -> Vec<SignedEdge> {
    let mut updates: Vec<SignedEdge> = stream
        .edges()
        .iter()
        .copied()
        .map(SignedEdge::insert)
        .collect();
    updates.extend(
        stream
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                (*i as u64 ^ churn_seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 62 == 0
            })
            .map(|(_, e)| SignedEdge::delete(*e)),
    );
    updates
}

#[test]
fn socket_family_matches_serial_parallel_and_pipes() {
    let stream = generated_stream(2, 30, 3_000, 4, 11);
    let cfg = DistConfig::new(6, 4, 0.3, 11).with_sizing(SketchSizing::Budget(1_500));
    let serial = distributed_k_cover(&stream, &cfg);
    let pipes = ProcessRunner::new(cfg, worker_command(), 3)
        .run(&stream)
        .expect("pipe run");
    let socket = SocketRunner::new(cfg, worker_command(), 3)
        .run(&stream)
        .expect("socket run");
    assert_eq!(socket.family, serial.family);
    assert_eq!(socket.family, pipes.family);
    assert_eq!(socket.merged_edges, serial.merged_edges);
    assert_eq!(socket.stats.workers_joined, 3);
    assert_eq!(socket.stats.workers_lost, 0);
    assert_eq!(socket.stats.shards_requeued, 0);
    assert!(
        socket.stats.wire_bytes > 0,
        "chunk frames travel a real socket and must be accounted"
    );
    assert!(
        socket.stats.chunks_streamed >= 6,
        "every non-empty shard ships at least one JobChunk frame"
    );
}

#[test]
fn chunked_streaming_overlaps_ingest_with_transfer() {
    let stream = generated_stream(0, 30, 4_000, 4, 17);
    let cfg = DistConfig::new(6, 4, 0.3, 17).with_sizing(SketchSizing::Budget(1_500));
    let serial = distributed_k_cover(&stream, &cfg);
    // Tiny chunks and a small ack window force many in-flight frames per
    // shard, so a worker must start ingesting long before the tail chunk
    // is even written.
    let socket = SocketRunner::new(cfg, worker_command(), 2)
        .with_chunk_items(64)
        .with_chunk_window(2)
        .run(&stream)
        .expect("socket run with tiny chunks");
    assert_eq!(socket.family, serial.family);
    assert!(
        socket.stats.chunks_streamed > 6,
        "64-item chunks must split every shard into many frames (got {})",
        socket.stats.chunks_streamed
    );
    assert!(
        socket.stats.overlap_shards >= 1,
        "at least one shard must ack an early chunk (ingest began) \
         before its last chunk was sent"
    );
}

#[test]
fn mid_stream_connection_drop_requeues_and_the_family_survives() {
    let stream = generated_stream(2, 30, 3_000, 4, 23);
    let cfg = DistConfig::new(8, 4, 0.3, 23).with_sizing(SketchSizing::Budget(1_500));
    let serial = distributed_k_cover(&stream, &cfg);
    // Shard 0's connection is severed after its first chunk; the whole
    // shard must be requeued to a survivor and rebuilt bit-identically.
    let socket = SocketRunner::new(cfg, worker_command(), 2)
        .with_fault_plan(FaultPlan::new(23).with_fault(0, Fault::DropConn))
        .run(&stream)
        .expect("socket run past a severed connection");
    assert_eq!(
        socket.family, serial.family,
        "a shard lost mid-stream must requeue without changing the cover"
    );
    assert_eq!(socket.stats.conn_drops_injected, 1);
    assert!(socket.stats.workers_lost >= 1);
    assert!(
        socket.stats.shards_requeued >= 1,
        "the severed shard must be re-dispatched to a survivor"
    );
}

#[test]
fn stalled_connection_turns_suspect_then_recovers() {
    let stream = generated_stream(1, 24, 2_500, 3, 29);
    let cfg = DistConfig::new(6, 3, 0.3, 29).with_sizing(SketchSizing::Budget(1_200));
    let serial = distributed_k_cover(&stream, &cfg);
    // Shard 1's stream stalls for 600ms without closing. Probes queued
    // behind the stall age past the suspect threshold (120ms) but not
    // the dead one (5s), so the worker must be graded suspect and then
    // snap back to live when the stall ends and the echo drains.
    let socket = SocketRunner::new(cfg, worker_command(), 2)
        .with_fault_plan(FaultPlan::new(29).with_fault(1, Fault::Stall(600)))
        .with_heartbeats(
            Duration::from_millis(40),
            Duration::from_millis(120),
            Duration::from_secs(5),
        )
        .run(&stream)
        .expect("socket run past a stalled stream");
    assert_eq!(socket.family, serial.family);
    assert_eq!(socket.stats.stalls_injected, 1);
    assert!(
        socket.stats.suspect_transitions >= 1,
        "a 600ms stall must trip the 120ms suspect threshold"
    );
    assert!(
        socket.stats.suspect_recoveries >= 1,
        "the stalled worker answers its probe once the stall ends"
    );
    assert_eq!(
        socket.stats.workers_lost, 0,
        "suspect is not dead: no connection may be severed"
    );
}

#[test]
fn duplicated_chunks_are_rejected_by_index_on_the_linear_sketch() {
    let stream = generated_stream(2, 24, 2_000, 3, 41);
    let dyn_stream = VecDynamicStream::new(24, signed_updates(&stream, 41));
    let cfg = DistConfig::new(5, 3, 0.3, 41).with_sizing(SketchSizing::Budget(1_200));
    let serial = dynamic_distributed_k_cover(&dyn_stream, &cfg);
    // The dynamic sketch is linear, so a double-ingested chunk would
    // corrupt cell counts silently. Bit-equality with the serial
    // reference is the proof the duplicate was rejected by index.
    let socket = SocketRunner::new(cfg, worker_command(), 2)
        .with_fault_plan(FaultPlan::new(41).with_fault(0, Fault::DupChunk))
        .with_chunk_items(128)
        .run_dynamic(&dyn_stream)
        .expect("dynamic socket run with a duplicated chunk");
    assert_eq!(socket.family, serial.family);
    assert_eq!(socket.sample_level, serial.sample_level);
    assert_eq!(socket.recovered_edges, serial.recovered_edges);
    assert_eq!(socket.stats.chunk_dups_injected, 1);
}

#[test]
fn total_worker_loss_degrades_to_inline_and_still_matches() {
    let stream = generated_stream(1, 20, 1_500, 3, 31);
    let cfg = DistConfig::new(6, 3, 0.3, 31).with_sizing(SketchSizing::Budget(1_000));
    let serial = distributed_k_cover(&stream, &cfg);
    // One worker whose first stream is severed: the registry empties, no
    // late joiner arrives within the grace window, and the coordinator
    // must fall back to building every remaining shard inline.
    let socket = SocketRunner::new(cfg, worker_command(), 1)
        .with_fault_plan(FaultPlan::new(31).with_fault(0, Fault::DropConn))
        .with_join_grace(Duration::from_millis(200))
        .run(&stream)
        .expect("socket run past total worker loss");
    assert_eq!(socket.family, serial.family);
    assert_eq!(socket.stats.workers_lost, 1);
    assert!(
        socket.stats.shards_built_inline >= 1,
        "with no survivors the coordinator builds shards itself"
    );
}

#[test]
fn late_joining_worker_is_admitted_and_used() {
    let stream = generated_stream(0, 40, 5_000, 4, 37);
    let cfg = DistConfig::new(12, 4, 0.3, 37).with_sizing(SketchSizing::Budget(1_500));
    let serial = distributed_k_cover(&stream, &cfg);
    // One initial worker grinding twelve shards one at a time through
    // tiny chunks, plus a second worker spawned 20ms into the run: the
    // late joiner must be admitted mid-run and handed queued shards.
    let socket = SocketRunner::new(cfg, worker_command(), 1)
        .with_chunk_items(64)
        .with_late_worker_after(Duration::from_millis(20))
        .run(&stream)
        .expect("socket run with a late joiner");
    assert_eq!(socket.family, serial.family);
    assert!(
        socket.stats.late_joiners >= 1,
        "the scheduled late worker must be admitted"
    );
    let late_shards: usize = socket
        .stats
        .workers
        .iter()
        .filter(|w| w.late_joiner)
        .map(|w| w.shards_completed)
        .sum();
    assert!(
        late_shards >= 1,
        "the late joiner must complete at least one queued shard \
         (summaries: {:?})",
        socket.stats.workers
    );
}

#[test]
fn heartbeat_rtt_lands_in_socket_and_process_stats() {
    let stream = generated_stream(2, 24, 2_500, 3, 43);
    let cfg = DistConfig::new(6, 3, 0.3, 43).with_sizing(SketchSizing::Budget(1_200));
    let socket = SocketRunner::new(cfg, worker_command(), 2)
        .with_heartbeats(
            Duration::from_millis(20),
            Duration::from_millis(400),
            Duration::from_secs(3),
        )
        .with_chunk_items(128)
        .run(&stream)
        .expect("socket run");
    let hb = &socket.stats.heartbeat;
    assert!(hb.probes >= 1, "probes must tick during the run");
    assert!(hb.min_ns() <= hb.mean_ns() && hb.mean_ns() <= hb.max_ns());
    assert!(hb.max_ns() > 0, "a loopback RTT is small but not zero");
    // The pipe executor records its handshake-probe RTTs too.
    let pipes = ProcessRunner::new(cfg, worker_command(), 2)
        .run(&stream)
        .expect("pipe run");
    assert!(
        pipes.heartbeat.probes >= 1,
        "ProcessRunner must surface probe RTTs on its result"
    );
}

#[test]
fn malformed_fault_specs_get_typed_errors() {
    use coverage_suite::dist::FaultParseError;
    assert_eq!(
        FaultPlan::parse("crash@0"),
        Err(FaultParseError::MissingColon("crash@0".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("x:crash@0"),
        Err(FaultParseError::BadSeed("x".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("7:rand101"),
        Err(FaultParseError::BadRandomPct("rand101".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("7:drop"),
        Err(FaultParseError::MissingShard("drop".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("7:dup@x"),
        Err(FaultParseError::BadShard("x".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("7:stall@0"),
        Err(FaultParseError::BadMillis("stall".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("7:flop@0"),
        Err(FaultParseError::UnknownKind("flop".to_string()))
    );
    // Boundary percentages are valid and round-trip.
    assert_eq!(FaultPlan::parse("7:rand0"), Ok(FaultPlan::new(7)));
    let full = FaultPlan::parse("7:rand100").expect("rand100 is in range");
    assert_eq!(FaultPlan::parse(&full.to_string()), Ok(full));
}

/// One arbitrary fault of any of the seven kinds, with millisecond
/// arguments already inside the clamp range so `with_fault` is lossless
/// (boundary values 0 and `MAX_DELAY_MS` included).
fn arb_fault() -> impl Strategy<Value = Fault> {
    (0u8..7, 0u64..MAX_DELAY_MS + 1).prop_map(|(kind, ms)| match kind {
        0 => Fault::Crash,
        1 => Fault::Hang,
        2 => Fault::Delay(ms),
        3 => Fault::CorruptReply,
        4 => Fault::DropConn,
        5 => Fault::Stall(ms),
        _ => Fault::DupChunk,
    })
}

proptest! {
    /// `FaultPlan::parse` inverts `Display` for every plan over all
    /// seven fault kinds, any shard set, and the full 0..=100 random
    /// percentage range (boundaries included).
    #[test]
    fn fault_plan_display_parse_round_trip(
        seed in 0u64..10_000,
        entries in proptest::collection::vec((0usize..64, arb_fault()), 0..6),
        pct in 0u8..101,
    ) {
        let mut plan = FaultPlan::new(seed);
        for (shard, fault) in entries {
            plan = plan.with_fault(shard, fault);
        }
        plan = plan.with_random_pct(pct);
        let spelled = plan.to_string();
        prop_assert_eq!(
            FaultPlan::parse(&spelled),
            Ok(plan),
            "spelling `{}` must parse back to the same plan",
            spelled
        );
    }
}
