//! The dynamic (insert/delete) subsystem's contracts, property-tested at
//! the workspace level:
//!
//! 1. **Cancellation** — a [`DynamicSketch`] fed `inserts ∪ deletes` is
//!    bit-identical (same recovery: level, edges, cover) to one fed only
//!    the surviving edges, across the uniform/zipf/planted generators
//!    and churn/window deletion patterns.
//! 2. **Merge associativity** — partitioning the updates arbitrarily and
//!    merging in any grouping reproduces the single-build sketch.
//! 3. **Approximation** — the dynamic cover's value on the surviving
//!    graph stays within the paper's `(1 − 1/e − ε)` bound of the
//!    insertion-only pipeline run on the surviving edge set
//!    (deterministic fixed-seed integration check, the acceptance
//!    criterion for `coverage kcover --dynamic`).

use proptest::prelude::*;

use coverage_suite::data::{
    churn_workload, planted_k_cover, sliding_window_workload, uniform_instance, zipf_instance,
};
use coverage_suite::prelude::*;

/// A deletion workload from one of the generator families.
/// `generator`: 0 = uniform, 1 = zipf, 2 = planted; `pattern`:
/// 0 = churn, 1 = sliding window.
fn generated_workload(
    generator: u8,
    pattern: u8,
    n: usize,
    m: u64,
    k: usize,
    churn: f64,
    seed: u64,
) -> DynamicWorkload {
    let inst = match generator % 3 {
        0 => uniform_instance(n, m, (m / 20).max(8) as usize, seed),
        1 => zipf_instance(n, m, 0.6, 1.05, (m / 8).max(8) as usize, seed),
        _ => planted_k_cover(n, m, k.max(1), (m / 16).max(4) as usize, seed).instance,
    };
    match pattern % 2 {
        0 => churn_workload(&inst, churn, seed ^ 0xC0),
        _ => sliding_window_workload(&inst, 4, 2, seed ^ 0xC1),
    }
}

/// Canonical content of a recovered sample.
fn recovery_key(s: &DynamicSketch) -> (usize, Vec<Edge>) {
    let sample = s.recover().expect("sketch must decode");
    (sample.level, sample.edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: the sketch of the signed stream equals the sketch of
    /// the surviving edges — deletions cancel exactly.
    #[test]
    fn dynamic_sketch_equals_insertion_only_over_survivors(
        generator in 0u8..3,
        pattern in 0u8..2,
        churn in 0.1f64..0.9,
        budget in 300usize..2_000,
        seed in 0u64..1_000,
    ) {
        let w = generated_workload(generator, pattern, 20, 1_200, 3, churn, seed);
        let params = DynamicSketchParams::new(
            SketchParams::with_budget(20, 3, 0.4, budget));
        let from_updates = DynamicSketch::from_stream(params, seed ^ 0xABC, &w.stream);
        let survivors = surviving_stream(&w.stream);
        let from_survivors =
            DynamicSketch::from_stream(params, seed ^ 0xABC, &InsertOnly::new(&survivors));
        prop_assert_eq!(
            recovery_key(&from_updates),
            recovery_key(&from_survivors),
            "generator={} pattern={} churn={:.2}",
            generator, pattern, churn
        );
    }

    /// Contract 2: merging any partition of the updates, in any grouping,
    /// reproduces the single-build sketch.
    #[test]
    fn dynamic_merge_is_associative_across_partitions(
        generator in 0u8..3,
        parts in 2usize..6,
        budget in 300usize..1_500,
        seed in 0u64..1_000,
    ) {
        let w = generated_workload(generator, 0, 16, 800, 3, 0.5, seed);
        let params = DynamicSketchParams::new(
            SketchParams::with_budget(16, 3, 0.4, budget));
        let sketch_seed = seed ^ 0x5EED;
        let whole = DynamicSketch::from_stream(params, sketch_seed, &w.stream);
        // Partition updates round-robin.
        let mut shards: Vec<Vec<SignedEdge>> = vec![Vec::new(); parts];
        for (i, &u) in w.stream.updates().iter().enumerate() {
            shards[i % parts].push(u);
        }
        let locals: Vec<DynamicSketch> = shards
            .into_iter()
            .map(|s| {
                DynamicSketch::from_stream(params, sketch_seed, &VecDynamicStream::new(16, s))
            })
            .collect();
        // Left fold.
        let mut left = locals[0].clone();
        for l in &locals[1..] {
            left.merge_from(l);
        }
        // Right fold (reverse order — exercises commutativity too).
        let mut right = locals[locals.len() - 1].clone();
        for l in locals[..locals.len() - 1].iter().rev() {
            right.merge_from(l);
        }
        prop_assert_eq!(recovery_key(&left), recovery_key(&whole));
        prop_assert_eq!(recovery_key(&right), recovery_key(&whole));
    }

    /// The end-to-end driver inherits both contracts: the dynamic cover
    /// equals the one computed from the surviving edges alone.
    #[test]
    fn dynamic_k_cover_depends_only_on_survivors(
        generator in 0u8..3,
        churn in 0.2f64..0.8,
        seed in 0u64..500,
    ) {
        let w = generated_workload(generator, 0, 18, 1_000, 3, churn, seed);
        let cfg = DynamicKCoverConfig::new(3, 0.3, seed ^ 7)
            .with_sizing(SketchSizing::Budget(1_500));
        let via_updates = dynamic_k_cover(&w.stream, &cfg);
        let survivors = surviving_stream(&w.stream);
        let via_survivors = dynamic_k_cover(&InsertOnly::new(&survivors), &cfg);
        prop_assert_eq!(&via_updates.family, &via_survivors.family);
        prop_assert_eq!(via_updates.sample_level, via_survivors.sample_level);
        prop_assert_eq!(via_updates.recovered_edges, via_survivors.recovered_edges);
    }
}

/// Contract 3, pinned deterministically (fixed seeds): the acceptance
/// criterion behind `coverage kcover --dynamic`. On a churn workload the
/// dynamic cover's value must be within the paper's `(1 − 1/e − ε)`
/// bound of the insertion-only pipeline's value on the surviving edges.
#[test]
fn dynamic_cover_within_paper_bound_of_insertion_only_run() {
    let eps = 0.25;
    for seed in [3u64, 11, 29] {
        let planted = planted_k_cover(50, 5_000, 4, 150, seed);
        let w = churn_workload(&planted.instance, 0.5, seed ^ 0xC0FE);
        let dyn_res = dynamic_k_cover(
            &w.stream,
            &DynamicKCoverConfig::new(4, eps, seed).with_sizing(SketchSizing::Budget(4_000)),
        );
        let mut surv_stream = surviving_stream(&w.stream);
        ArrivalOrder::Random(seed ^ 0xA1).apply(surv_stream.edges_mut());
        let ins_res = k_cover_streaming(
            &surv_stream,
            &KCoverConfig::new(4, eps, seed).with_sizing(SketchSizing::Budget(4_000)),
        );
        let dyn_cov = w.surviving.coverage(&dyn_res.family) as f64;
        let ins_cov = w.surviving.coverage(&ins_res.family) as f64;
        let bound = (1.0 - 1.0 / std::f64::consts::E - eps) * ins_cov;
        assert!(
            dyn_cov >= bound,
            "seed {seed}: dynamic {dyn_cov} below bound {bound:.0} (insertion-only {ins_cov})"
        );
        // In practice the two pipelines agree almost exactly; record the
        // stronger empirical fact so regressions surface early.
        assert!(
            dyn_cov >= 0.9 * ins_cov,
            "seed {seed}: dynamic {dyn_cov} far below insertion-only {ins_cov}"
        );
    }
}

/// Fixed-seed regression: the exact family and sample level selected on
/// a reference churn workload, through the serial dynamic runner and
/// the parallel executor. If this changes, the level hashing, cell
/// placement, or greedy tie-breaking changed — all contract surface.
#[test]
fn reference_dynamic_workload_pinned() {
    let planted = planted_k_cover(40, 5_000, 4, 150, 3);
    let w = churn_workload(&planted.instance, 0.4, 5);
    let cfg = DistConfig::new(6, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
    let serial = dynamic_distributed_k_cover(&w.stream, &cfg);
    let par = ParallelRunner::new(cfg, 4).run_dynamic(&w.stream);
    assert_eq!(par.family, serial.family);
    assert_eq!(par.sample_level, serial.sample_level);
    assert_eq!(par.recovered_edges, serial.recovered_edges);
    // The planted golden sets are 0..4; the dynamic pipeline must find
    // exactly them (order may legitimately change if tie-breaking does —
    // update deliberately).
    let mut family = par.family.clone();
    family.sort();
    assert_eq!(family, vec![SetId(0), SetId(1), SetId(2), SetId(3)]);
}
