//! Integration tests for the extension surface: weighted coverage, local
//! search, parallel greedy, eviction ablation, snapshots-over-the-wire,
//! tree reduction, and instance I/O — each exercised through a full
//! multi-crate pipeline, not in isolation.

use coverage_suite::core::offline::{greedy_set_cover, lazy_greedy_k_cover};
use coverage_suite::data::{to_json, to_text};
use coverage_suite::prelude::*;
use coverage_suite::sketch::SketchParams;

/// Local search and greedy both run on the *same* streamed sketch and both
/// transfer their quality to the original instance (Theorem 2.7 is
/// solver-agnostic).
#[test]
fn sketch_serves_multiple_solvers() {
    let planted = planted_k_cover(50, 8_000, 5, 700, 31);
    let inst = &planted.instance;
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(3).apply(stream.edges_mut());

    let params = SketchParams::with_budget(50, 5, 0.25, 5_000);
    let sketch = ThresholdSketch::from_stream(params, 77, &stream);
    let content = sketch.instance();

    let greedy = lazy_greedy_k_cover(&content, 5).family();
    let swaps = local_search_k_cover(&content, 5).family;
    let parallel = parallel_greedy_k_cover(&content, 5, 4).family();

    let opt = planted.optimal_value as f64;
    for (name, fam) in [
        ("greedy", &greedy),
        ("local-search", &swaps),
        ("parallel", &parallel),
    ] {
        let ratio = inst.coverage(fam) as f64 / opt;
        assert!(ratio > 0.6, "{name}: ratio {ratio}");
    }
    // Parallel greedy is output-identical to sequential greedy.
    assert_eq!(greedy, parallel);
}

/// Weighted pipeline end to end: weights → unit replication → streaming →
/// weighted evaluation, compared against direct weighted greedy.
#[test]
fn weighted_unit_replication_pipeline() {
    let inst = uniform_instance(30, 2_000, 80, 5);
    let weights = ElementWeights::from_fn(&inst, |id| 1 + id.0 % 5);
    let k = 4;
    let max_w = 5u64;

    let mut b = CoverageInstance::builder(inst.num_sets());
    for s in inst.set_ids() {
        for &d in inst.dense_set(s) {
            let base = inst.element_id(d).0 * max_w;
            for c in 0..weights.get(d) {
                b.add_edge(Edge::new(s.0, base + c));
            }
        }
    }
    let replicated = b.build();
    assert_eq!(replicated.num_elements() as u64, weights.total());

    let mut stream = VecStream::from_instance(&replicated);
    ArrivalOrder::Random(11).apply(stream.edges_mut());
    let cfg =
        KCoverConfig::new(k, 0.2, 9).with_sizing(SketchSizing::Budget(replicated.num_edges() / 2));
    let res = k_cover_streaming(&stream, &cfg);

    let streamed_w = weighted_coverage(&inst, &weights, &res.family);
    let offline_w = weighted_greedy_k_cover(&inst, &weights, k).covered_weight();
    assert!(
        streamed_w as f64 >= 0.7 * offline_w as f64,
        "streamed weight {streamed_w} vs offline {offline_w}"
    );
}

/// The greedy-trap adversarial instance: offline greedy pays the ln m gap,
/// and the streamed pipeline (greedy on a roomy sketch) reproduces the
/// same trap trajectory — sketching does not accidentally "fix" greedy.
#[test]
fn greedy_trap_survives_the_stream() {
    let trap = greedy_trap(8);
    let inst = &trap.instance;

    let offline = greedy_set_cover(inst);
    assert_eq!(offline.len(), 8, "offline greedy walks the trap");

    // Stream through a sketch big enough to hold everything: the sketch
    // content equals the input, so greedy must behave identically.
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(13).apply(stream.edges_mut());
    let params = SketchParams::with_budget(inst.num_sets(), 2, 0.3, inst.num_edges() * 2);
    let sketch = ThresholdSketch::from_stream(params, 5, &stream);
    assert!(sketch.is_exact_sample());
    let streamed = greedy_set_cover(&sketch.instance());
    assert_eq!(streamed.len(), offline.len());

    // k-cover restriction: ratio ≈ 3/4 both ways.
    let k2 = lazy_greedy_k_cover(&sketch.instance(), 2).family();
    let opt2 = inst.coverage(&trap.optimal_cover) as f64;
    let ratio = inst.coverage(&k2) as f64 / opt2;
    assert!((0.70..0.80).contains(&ratio), "trap ratio {ratio}");
}

/// Snapshot-over-the-wire distributed path: shard → sketch → JSON → merge
/// tree → solve equals the local Algorithm 3 answer.
#[test]
fn wire_format_tree_reduce_equals_local() {
    let planted = planted_k_cover(40, 6_000, 4, 500, 17);
    let mut stream = VecStream::from_instance(&planted.instance);
    ArrivalOrder::Random(23).apply(stream.edges_mut());

    let params = SketchParams::with_budget(40, 4, 0.3, 3_000);
    let seed = 41;

    // Local reference.
    let local = ThresholdSketch::from_stream(params, seed, &stream);
    let local_family = lazy_greedy_k_cover(&local.instance(), 4).family();

    // Sharded build: round-robin the edges across 5 "machines", ship
    // snapshots through JSON, reduce with a fan-in-2 tree.
    let mut shards: Vec<ThresholdSketch> =
        (0..5).map(|_| ThresholdSketch::new(params, seed)).collect();
    let mut i = 0usize;
    use coverage_suite::stream::EdgeStream as _;
    stream.for_each(&mut |e| {
        shards[i % 5].update(e);
        i += 1;
    });
    let shipped: Vec<ThresholdSketch> = shards
        .iter()
        .map(|s| {
            SketchSnapshot::from_json(&SketchSnapshot::of(s).to_json())
                .expect("wire json parses")
                .restore()
        })
        .collect();
    let (merged, report) = tree_reduce(shipped, 2);
    assert!(report.num_rounds() >= 3); // 5 → 3 → 2 → 1
    let dist_family = lazy_greedy_k_cover(&merged.instance(), 4).family();
    assert_eq!(local_family, dist_family);
}

/// Instance persistence: an instance survives text and JSON round-trips
/// and the restored instance gives identical algorithm outputs.
#[test]
fn persisted_instances_reproduce_results() {
    let inst = uniform_instance(25, 1_500, 60, 29);
    let reference = lazy_greedy_k_cover(&inst, 6).family();

    let text_back = coverage_suite::data::from_text(to_text(&inst).as_bytes()).unwrap();
    assert_eq!(lazy_greedy_k_cover(&text_back, 6).family(), reference);

    let meta = InstanceMeta {
        name: "roundtrip".into(),
        source: "uniform(25,1500,60,29)".into(),
    };
    let (json_back, meta2) = coverage_suite::data::from_json(&to_json(&inst, &meta)).unwrap();
    assert_eq!(lazy_greedy_k_cover(&json_back, 6).family(), reference);
    assert_eq!(meta2.name, "roundtrip");
}

/// Eviction ablation through the full pipeline: the paper's policy gives
/// the same family on wildly different arrival orders; FIFO does not
/// (on hash-sorted adversarial input).
#[test]
fn eviction_policy_order_sensitivity_end_to_end() {
    let planted = planted_k_cover(30, 5_000, 4, 400, 53);
    let inst = &planted.instance;
    let params = SketchParams::with_budget(30, 4, 0.3, 1_200);
    let seed = 61;

    let family_for = |policy: EvictionPolicy, reverse: bool| {
        let mut s = VecStream::from_instance(inst);
        ArrivalOrder::ByHashDesc(seed).apply(s.edges_mut());
        if reverse {
            s.edges_mut().reverse();
        }
        let sk = AblatedSketch::from_stream(params, seed, policy, &s);
        lazy_greedy_k_cover(&sk.instance(), 4).family()
    };

    let paper_desc = family_for(EvictionPolicy::MaxHash, false);
    let paper_asc = family_for(EvictionPolicy::MaxHash, true);
    assert_eq!(paper_desc, paper_asc, "paper policy is order-invariant");

    let opt = planted.optimal_value as f64;
    let paper_ratio = inst.coverage(&paper_desc) as f64 / opt;
    let fifo_asc = family_for(EvictionPolicy::Fifo, true);
    let fifo_ratio = inst.coverage(&fifo_asc) as f64 / opt;
    assert!(
        paper_ratio >= fifo_ratio - 1e-9,
        "paper {paper_ratio} vs fifo-on-adversarial {fifo_ratio}"
    );
}

/// Block-model + distributed: community-sharded data still merges into the
/// exact single-machine sketch (composability is placement-independent).
#[test]
fn block_model_distributed_invariance() {
    let model = BlockModel {
        communities: 4,
        sets_per_community: 8,
        elements_per_community: 800,
        degree: 100,
        mix: 0.15,
    };
    let inst = model.generate(71);
    let stream = VecStream::from_instance(&inst);
    for machines in [1usize, 4] {
        let cfg = DistConfig::new(machines, 5, 0.3, 19).with_sizing(SketchSizing::Budget(2_000));
        let res = distributed_k_cover(&stream, &cfg);
        assert_eq!(res.family.len(), 5);
        if machines == 1 {
            continue;
        }
        let one = distributed_k_cover(
            &stream,
            &DistConfig::new(1, 5, 0.3, 19).with_sizing(SketchSizing::Budget(2_000)),
        );
        assert_eq!(one.family, res.family);
    }
}
