//! The `coverage serve` daemon, exercised as a **real subprocess**:
//! the CLI binary Cargo built for this test run, spoken to over its
//! actual stdin/stdout pipes with framed protocol bytes. The oracle is
//! a [`LiveStore`] rebuilt in-process from the same config and update
//! stream — query answers must be bit-identical
//! ([`QueryAnswer::bit_eq`]) and shipped snapshot frames byte-identical
//! to the local store's own binary export.
//!
//! Requests are written in full before replies are read; the total
//! reply volume here is far below the OS pipe buffer, so the
//! write-then-read order cannot deadlock.

use std::io::Write as _;
use std::process::{Child, Command, Stdio};

use coverage_suite::data::planted_k_cover;
use coverage_suite::prelude::*;
use coverage_suite::serve::{read_reply, write_request, ProtoError, Reply, Request};

fn spawn_serve(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_coverage"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coverage serve")
}

/// Write every request, close stdin, then read replies until EOF.
fn converse(mut child: Child, requests: &[Request]) -> Vec<Reply> {
    {
        let mut stdin = child.stdin.take().expect("piped stdin");
        for r in requests {
            write_request(&mut stdin, r).expect("request frame");
        }
        stdin.flush().expect("flush requests");
    }
    let mut stdout = child.stdout.take().expect("piped stdout");
    let mut replies = Vec::new();
    loop {
        match read_reply(&mut stdout) {
            Ok((reply, _)) => replies.push(reply),
            Err(ProtoError::Eof) => break,
            Err(e) => panic!("bad reply stream: {e}"),
        }
    }
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "daemon must drain cleanly: {status}");
    replies
}

fn insert_updates(seed: u64) -> Vec<SignedEdge> {
    let inst = planted_k_cover(6, 900, 2, 40, seed).instance;
    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(seed ^ 0xA5).apply(stream.edges_mut());
    stream
        .edges()
        .iter()
        .copied()
        .map(SignedEdge::insert)
        .collect()
}

/// The CLI's bank config for `--n 6 --guesses 3 --eps 0.25 --budget 800
/// --seed 9` — must mirror `cmd_serve`'s defaults exactly.
fn bank_cfg() -> ServeConfig {
    ServeConfig::bank_ladder(6, 3, 0.25, 800, 9)
        .with_publish_every(128)
        .with_queue_batches(16)
}

#[test]
fn bank_daemon_answers_match_an_in_process_rebuild() {
    let updates = insert_updates(9);
    let child = spawn_serve(&[
        "--n",
        "6",
        "--guesses",
        "3",
        "--budget",
        "800",
        "--seed",
        "9",
        "--publish-every",
        "128",
    ]);
    let mut requests: Vec<Request> = updates
        .chunks(200)
        .enumerate()
        .map(|(i, chunk)| Request::Update {
            id: i as u64,
            updates: chunk.to_vec(),
        })
        .collect();
    requests.push(Request::Flush { id: 100 });
    requests.push(Request::Query { id: 101, k: 2 });
    requests.push(Request::Stats { id: 102 });
    requests.push(Request::Snapshot { id: 103 });
    requests.push(Request::Shutdown { id: 104 });
    let replies = converse(child, &requests);
    assert_eq!(replies.len(), 5, "updates succeed silently");

    // The in-process oracle: same config, same stream, applied serially.
    let cfg = bank_cfg();
    let mut store = LiveStore::new(&cfg);
    store.apply(&updates);

    match &replies[0] {
        Reply::Flush {
            id,
            epoch,
            updates_applied,
        } => {
            assert_eq!(*id, 100);
            assert!(*epoch >= 1);
            assert_eq!(*updates_applied, updates.len() as u64);
        }
        other => panic!("wrong reply: {other:?}"),
    }
    match &replies[1] {
        Reply::Query { id, answer } => {
            assert_eq!(*id, 101);
            assert_eq!(answer.updates_applied, updates.len() as u64);
            let rebuilt = store
                .snapshot(answer.epoch, answer.updates_applied)
                .expect("bank store always exports");
            let reference = answer_query(&rebuilt, 2);
            assert!(
                answer.bit_eq(&reference),
                "daemon answer diverges from the in-process rebuild"
            );
        }
        other => panic!("wrong reply: {other:?}"),
    }
    match &replies[2] {
        Reply::Stats { id, stats } => {
            assert_eq!(*id, 102);
            assert_eq!(stats.updates_applied, updates.len() as u64);
            assert_eq!(stats.staleness(), 0, "post-flush stats are current");
            assert!(stats.report.rounds.len() as u64 >= stats.epochs_published.min(1));
        }
        other => panic!("wrong reply: {other:?}"),
    }
    match &replies[3] {
        Reply::Snapshot { id, epoch, frames } => {
            assert_eq!(*id, 103);
            assert!(*epoch >= 1);
            assert_eq!(
                frames,
                &store.ship_binary_frames(),
                "shipped frames must be byte-identical to the local export"
            );
            for frame in frames {
                SketchSnapshot::decode_binary(frame).expect("frame decodes");
            }
        }
        other => panic!("wrong reply: {other:?}"),
    }
    match &replies[4] {
        Reply::Stats { id, stats } => {
            assert_eq!(*id, 104);
            assert_eq!(stats.updates_applied, updates.len() as u64);
        }
        other => panic!("wrong reply: {other:?}"),
    }
}

#[test]
fn bank_daemon_rejects_deletes_and_keeps_serving() {
    let child = spawn_serve(&["--n", "4", "--guesses", "2", "--seed", "3"]);
    let replies = converse(
        child,
        &[
            Request::Update {
                id: 1,
                updates: vec![SignedEdge::delete(Edge::new(0u32, 5u64))],
            },
            Request::Update {
                id: 2,
                updates: (0..50u64)
                    .map(|e| SignedEdge::insert(Edge::new((e % 4) as u32, e)))
                    .collect(),
            },
            Request::Flush { id: 3 },
            Request::Query { id: 4, k: 1 },
            Request::Shutdown { id: 5 },
        ],
    );
    assert_eq!(replies.len(), 4);
    match &replies[0] {
        Reply::Error { id, message } => {
            assert_eq!(*id, 1);
            assert!(message.contains("insertion-only"));
        }
        other => panic!("wrong reply: {other:?}"),
    }
    match &replies[2] {
        Reply::Query { id, answer } => {
            assert_eq!(*id, 4);
            assert_eq!(answer.updates_applied, 50, "rejected batch never applied");
            assert!(!answer.family.is_empty());
        }
        other => panic!("wrong reply: {other:?}"),
    }
}

#[test]
fn dynamic_daemon_serves_churn_and_matches_rebuild() {
    let inst = planted_k_cover(6, 700, 2, 30, 17).instance;
    let workload = churn_workload(&inst, 0.4, 17);
    let updates = workload.stream.updates().to_vec();
    let child = spawn_serve(&[
        "--n",
        "6",
        "--dynamic",
        "--k",
        "3",
        "--budget",
        "800",
        "--seed",
        "17",
        "--publish-every",
        "256",
    ]);
    let mut requests: Vec<Request> = updates
        .chunks(150)
        .enumerate()
        .map(|(i, chunk)| Request::Update {
            id: i as u64,
            updates: chunk.to_vec(),
        })
        .collect();
    requests.push(Request::Flush { id: 900 });
    requests.push(Request::Query { id: 901, k: 3 });
    requests.push(Request::Shutdown { id: 902 });
    let replies = converse(child, &requests);
    assert_eq!(replies.len(), 3);

    // Mirror cmd_serve's --dynamic config construction.
    let params = DynamicSketchParams::new(SketchParams::with_budget(6, 3, 0.25, 800));
    let cfg = ServeConfig::dynamic(params, 17)
        .with_publish_every(256)
        .with_queue_batches(16);
    let mut store = LiveStore::new(&cfg);
    store.apply(&updates);

    match &replies[1] {
        Reply::Query { id, answer } => {
            assert_eq!(*id, 901);
            assert_eq!(answer.updates_applied, updates.len() as u64);
            let rebuilt = store
                .snapshot(answer.epoch, answer.updates_applied)
                .expect("churned store recovers");
            assert!(
                answer.bit_eq(&answer_query(&rebuilt, 3)),
                "dynamic daemon answer diverges from the in-process rebuild"
            );
        }
        other => panic!("wrong reply: {other:?}"),
    }
    match &replies[2] {
        Reply::Stats { id, stats } => {
            assert_eq!(*id, 902);
            assert_eq!(stats.updates_applied, updates.len() as u64);
            assert_eq!(stats.staleness(), 0);
        }
        other => panic!("wrong reply: {other:?}"),
    }
}

#[test]
fn corrupt_and_oversized_frames_get_error_replies_and_serving_continues() {
    let child = spawn_serve(&["--n", "4", "--guesses", "2", "--seed", "7"]);
    let mut raw = Vec::new();
    // 1. A valid update batch.
    write_request(
        &mut raw,
        &Request::Update {
            id: 1,
            updates: (0..60u64)
                .map(|e| SignedEdge::insert(Edge::new((e % 4) as u32, e * 5)))
                .collect(),
        },
    )
    .unwrap();
    // 2. A checksum-corrupted frame: one payload bit flipped. The
    //    daemon consumes the whole frame (length header is intact), so
    //    the stream stays in sync.
    let corrupt_start = raw.len();
    write_request(&mut raw, &Request::Query { id: 2, k: 1 }).unwrap();
    raw[corrupt_start + 17] ^= 0x40;
    // 3. An oversized frame: a bare header whose declared payload
    //    length exceeds the cap. Rejected before allocation, and only
    //    the 16 header bytes are consumed.
    raw.extend_from_slice(b"CVSV");
    raw.extend_from_slice(&coverage_suite::serve::proto::SERVE_VERSION.to_le_bytes());
    raw.push(1);
    raw.push(0);
    raw.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
    // 4. Serving continues: a valid flush, query, and shutdown still
    //    answer.
    write_request(&mut raw, &Request::Flush { id: 3 }).unwrap();
    write_request(&mut raw, &Request::Query { id: 4, k: 1 }).unwrap();
    write_request(&mut raw, &Request::Shutdown { id: 5 }).unwrap();

    let mut child = child;
    {
        let mut stdin = child.stdin.take().expect("piped stdin");
        stdin.write_all(&raw).expect("write raw frames");
        stdin.flush().expect("flush raw frames");
    }
    let mut stdout = child.stdout.take().expect("piped stdout");
    let mut replies = Vec::new();
    loop {
        match read_reply(&mut stdout) {
            Ok((reply, _)) => replies.push(reply),
            Err(ProtoError::Eof) => break,
            Err(e) => panic!("bad reply stream: {e}"),
        }
    }
    let status = child.wait().expect("daemon exit");
    assert!(status.success(), "daemon must keep serving: {status}");

    assert_eq!(replies.len(), 5);
    match &replies[0] {
        Reply::Error { id, message } => {
            assert_eq!(*id, 0, "a frame that never decoded has no id");
            assert!(message.contains("bad frame"), "got: {message}");
        }
        other => panic!("wrong reply: {other:?}"),
    }
    match &replies[1] {
        Reply::Error { id, message } => {
            assert_eq!(*id, 0);
            assert!(message.contains("bad frame"), "got: {message}");
        }
        other => panic!("wrong reply: {other:?}"),
    }
    assert!(matches!(&replies[2], Reply::Flush { id: 3, .. }));
    match &replies[3] {
        Reply::Query { id, answer } => {
            assert_eq!(*id, 4);
            assert_eq!(
                answer.updates_applied, 60,
                "the valid batch before the garbage still applied"
            );
        }
        other => panic!("wrong reply: {other:?}"),
    }
    assert!(matches!(&replies[4], Reply::Stats { id: 5, .. }));
}

#[test]
fn eof_between_frames_drains_the_daemon_cleanly() {
    let child = spawn_serve(&["--n", "4", "--guesses", "2", "--seed", "7"]);
    let replies = converse(
        child,
        &[Request::Update {
            id: 1,
            updates: (0..80u64)
                .map(|e| SignedEdge::insert(Edge::new((e % 4) as u32, e * 3)))
                .collect(),
        }],
    );
    assert!(replies.is_empty(), "EOF drain sends no reply");
}
