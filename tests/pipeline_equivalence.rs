//! Differential stress suite for the pipelined parallel executors and
//! the parallel multi-guess solve path.
//!
//! The contract under test: **pipelining is invisible in the output.**
//! For any thread count, shard count, workload family, and update mode
//! (insert-only or churn), [`ParallelRunner`] in
//! [`IngestMode::Pipelined`] (bounded channel of edge chunks per shard,
//! partition overlapping build) selects the *identical* family as
//! [`IngestMode::TwoBarrier`] (partition fully, then build) and as the
//! strictly serial simulation — and the parallel multi-guess solve
//! returns bit-identical full greedy traces to the sequential per-guess
//! loop.
//!
//! These tests run in CI's release-mode `RUST_TEST_THREADS ∈ {1, 2, 8}`
//! matrix leg, so the schedule-dependence surface (channel interleaving
//! under contention, work-stealing order in the guess solver) is
//! exercised under three different host-parallelism regimes.

use proptest::prelude::*;

use coverage_suite::data::{churn_workload, planted_k_cover, uniform_instance, zipf_instance};
use coverage_suite::prelude::*;
use coverage_suite::sketch::SketchParams;

/// The worker-thread counts the stress matrix sweeps. The executor
/// clamps threads to shards, so 8 also exercises the "more threads
/// than shards" corner on small machine counts.
const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

/// Build a seeded instance from one of the three generator families.
/// `generator`: 0 = uniform, 1 = zipf, 2 = planted.
fn generated_instance(generator: u8, n: usize, m: u64, k: usize, seed: u64) -> CoverageInstance {
    match generator % 3 {
        0 => uniform_instance(n, m, (m / 20).max(8) as usize, seed),
        1 => zipf_instance(n, m, 0.6, 1.05, (m / 8).max(8) as usize, seed),
        _ => planted_k_cover(n, m, k.max(1), (m / 16).max(4) as usize, seed).instance,
    }
}

fn generated_stream(generator: u8, n: usize, m: u64, k: usize, seed: u64) -> VecStream {
    let mut stream = VecStream::from_instance(&generated_instance(generator, n, m, k, seed));
    ArrivalOrder::Random(seed ^ 0xA5).apply(stream.edges_mut());
    stream
}

/// Insert-only sweep: pipelined == two-barrier == serial, exhaustively
/// over generators × shard counts × the thread matrix. Deterministic
/// (fixed seeds) so a failure pins the exact cell.
#[test]
fn pipelined_matches_two_barrier_and_serial_insert_only() {
    for generator in 0u8..3 {
        for machines in [1usize, 3, 8] {
            let seed = 31 + generator as u64 * 7 + machines as u64;
            let stream = generated_stream(generator, 20, 1_200, 3, seed);
            let cfg =
                DistConfig::new(machines, 3, 0.3, seed).with_sizing(SketchSizing::Budget(800));
            let serial = distributed_k_cover_serial(&stream, &cfg);
            for threads in THREAD_MATRIX {
                let pipe = ParallelRunner::new(cfg, threads)
                    .with_ingest_mode(IngestMode::Pipelined)
                    .run(&stream);
                let barrier = ParallelRunner::new(cfg, threads)
                    .with_ingest_mode(IngestMode::TwoBarrier)
                    .run(&stream);
                assert_eq!(
                    pipe.family, barrier.family,
                    "pipelined vs two-barrier: gen={generator} machines={machines} threads={threads}"
                );
                assert_eq!(
                    pipe.family, serial.family,
                    "pipelined vs serial: gen={generator} machines={machines} threads={threads}"
                );
                assert_eq!(pipe.merged_edges, serial.merged_edges);
            }
        }
    }
}

/// Churn sweep: the dynamic (insert/delete) pipeline under the same
/// matrix — pipelined == two-barrier == the serial dynamic reference,
/// over generators × shard counts × threads, on a 30%-churn workload.
#[test]
fn pipelined_matches_two_barrier_and_serial_churn() {
    for generator in 0u8..3 {
        for machines in [1usize, 4] {
            let seed = 53 + generator as u64 * 11 + machines as u64;
            let inst = generated_instance(generator, 14, 500, 2, seed);
            let workload = churn_workload(&inst, 0.3, seed ^ 0x77);
            let cfg =
                DistConfig::new(machines, 2, 0.3, seed).with_sizing(SketchSizing::Budget(600));
            let serial = dynamic_distributed_k_cover(&workload.stream, &cfg);
            for threads in THREAD_MATRIX {
                let pipe = ParallelRunner::new(cfg, threads)
                    .with_ingest_mode(IngestMode::Pipelined)
                    .run_dynamic(&workload.stream);
                let barrier = ParallelRunner::new(cfg, threads)
                    .with_ingest_mode(IngestMode::TwoBarrier)
                    .run_dynamic(&workload.stream);
                assert_eq!(
                    pipe.family, barrier.family,
                    "dynamic pipelined vs two-barrier: gen={generator} machines={machines} threads={threads}"
                );
                assert_eq!(
                    pipe.family, serial.family,
                    "dynamic pipelined vs serial: gen={generator} machines={machines} threads={threads}"
                );
            }
        }
    }
}

/// Insert-only streams are a special case of dynamic streams; the
/// dynamic pipelined path must agree with the dynamic serial reference
/// when fed an [`InsertOnly`] embedding too.
#[test]
fn pipelined_dynamic_handles_insert_only_embedding() {
    let stream = generated_stream(2, 16, 700, 3, 9);
    let embedded = InsertOnly::new(&stream);
    let cfg = DistConfig::new(4, 3, 0.3, 9).with_sizing(SketchSizing::Budget(700));
    let serial = dynamic_distributed_k_cover(&embedded, &cfg);
    for threads in THREAD_MATRIX {
        let pipe = ParallelRunner::new(cfg, threads)
            .with_ingest_mode(IngestMode::Pipelined)
            .run_dynamic(&embedded);
        assert_eq!(pipe.family, serial.family, "threads={threads}");
    }
}

/// The parallel multi-guess solve returns **full traces** (every greedy
/// step: set, gain, coverage-after) bit-identical to the sequential
/// per-guess loop — both the serial zero-rebuild twin and a hand-rolled
/// per-guess `csr_view` + bucket greedy loop.
#[test]
fn parallel_guess_solve_traces_match_sequential_loop() {
    for seed in [3u64, 17, 88] {
        let planted = planted_k_cover(30, 4_000, 5, 160, seed);
        let mut stream = VecStream::from_instance(&planted.instance);
        ArrivalOrder::Random(seed).apply(stream.edges_mut());
        let guesses: Vec<SketchParams> = (0..6)
            .map(|g| SketchParams::with_budget(30, 1 << g, 0.3, 1_200 + 300 * g))
            .collect();
        let mut bank = SketchBank::new(guesses.iter().copied(), seed ^ 0x1F);
        bank.consume_batched(&stream, 512);
        let sketches = bank.sketches();

        let parallel = solve_guesses_parallel(sketches);
        let serial = solve_guesses_serial(sketches);
        assert_eq!(parallel.len(), sketches.len());
        for (g, ((p, s), sketch)) in parallel.iter().zip(&serial).zip(sketches).enumerate() {
            assert_eq!(p.trace.steps, s.trace.steps, "guess {g} seed {seed}");
            assert_eq!(p.result.family, s.result.family, "guess {g} seed {seed}");
            assert_eq!(
                p.result.sketch_coverage, s.result.sketch_coverage,
                "guess {g} seed {seed}"
            );
            // Hand-rolled sequential reference: one csr_view + bucket
            // greedy per guess, in guess order.
            let reference = bucket_greedy_k_cover(&sketch.csr_view(), sketch.params().k);
            assert_eq!(p.trace.steps, reference.steps, "guess {g} seed {seed}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized insert-only cell sampling: any (generator, machines,
    /// threads, batch, seed) point keeps pipelined == two-barrier ==
    /// serial. Complements the exhaustive fixed-seed sweep above.
    #[test]
    fn pipelined_equivalence_random_cells(
        generator in 0u8..3,
        machines in 1usize..9,
        threads in 1usize..9,
        batch in 1usize..3_000,
        seed in 0u64..500,
    ) {
        let stream = generated_stream(generator, 18, 900, 3, seed);
        let cfg = DistConfig::new(machines, 3, 0.3, seed)
            .with_sizing(SketchSizing::Budget(700));
        let serial = distributed_k_cover_serial(&stream, &cfg);
        let pipe = ParallelRunner::new(cfg, threads)
            .with_ingest_mode(IngestMode::Pipelined)
            .with_batch(batch)
            .run(&stream);
        let barrier = ParallelRunner::new(cfg, threads)
            .with_ingest_mode(IngestMode::TwoBarrier)
            .with_batch(batch)
            .run(&stream);
        prop_assert_eq!(&pipe.family, &barrier.family,
            "gen={} machines={} threads={} batch={}", generator, machines, threads, batch);
        prop_assert_eq!(&pipe.family, &serial.family,
            "gen={} machines={} threads={} batch={}", generator, machines, threads, batch);
    }

    /// Randomized churn cell sampling for the dynamic pipeline.
    #[test]
    fn pipelined_dynamic_equivalence_random_cells(
        generator in 0u8..3,
        machines in 1usize..6,
        threads in 1usize..6,
        churn in 0.0f64..0.6,
        seed in 0u64..300,
    ) {
        let inst = generated_instance(generator, 12, 400, 2, seed);
        let workload = churn_workload(&inst, churn, seed ^ 0x3C);
        let cfg = DistConfig::new(machines, 2, 0.3, seed)
            .with_sizing(SketchSizing::Budget(500));
        let serial = dynamic_distributed_k_cover(&workload.stream, &cfg);
        let pipe = ParallelRunner::new(cfg, threads)
            .with_ingest_mode(IngestMode::Pipelined)
            .run_dynamic(&workload.stream);
        prop_assert_eq!(&pipe.family, &serial.family,
            "gen={} machines={} threads={} churn={:.2}", generator, machines, threads, churn);
    }
}
