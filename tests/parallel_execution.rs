//! The parallel executor's determinism contract, property-tested at the
//! workspace level: for the same `DistConfig` (machines, seed, sizing),
//! [`ParallelRunner`] with any thread count / fan-in / batch size selects
//! the **identical cover** — the same `SetId` sequence — as the
//! sequential `distributed_k_cover` simulation, across three workload
//! generators (uniform, zipf, planted).

use proptest::prelude::*;

use coverage_suite::data::{planted_k_cover, uniform_instance, zipf_instance};
use coverage_suite::prelude::*;

/// Build a seeded stream from one of the three generator families.
/// `generator`: 0 = uniform, 1 = zipf, 2 = planted.
fn generated_stream(generator: u8, n: usize, m: u64, k: usize, seed: u64) -> VecStream {
    let inst = match generator % 3 {
        0 => uniform_instance(n, m, (m / 20).max(8) as usize, seed),
        1 => zipf_instance(n, m, 0.6, 1.05, (m / 8).max(8) as usize, seed),
        _ => planted_k_cover(n, m, k.max(1), (m / 16).max(4) as usize, seed).instance,
    };
    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(seed ^ 0xA5).apply(stream.edges_mut());
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The determinism contract across all three generators and the whole
    /// executor parameter space.
    #[test]
    fn parallel_family_equals_sequential_family(
        generator in 0u8..3,
        machines in 1usize..9,
        threads in 2usize..6,
        fan_in in 2usize..5,
        k in 1usize..6,
        seed in 0u64..1_000,
        budget in 300usize..2_000,
    ) {
        let stream = generated_stream(generator, 24, 1_500, k, seed);
        let cfg = DistConfig::new(machines, k, 0.3, seed)
            .with_sizing(SketchSizing::Budget(budget));
        let seq = distributed_k_cover(&stream, &cfg);
        let par = ParallelRunner::new(cfg, threads).with_fan_in(fan_in).run(&stream);
        prop_assert_eq!(
            &par.family, &seq.family,
            "generator={} machines={} threads={} fan_in={}",
            generator, machines, threads, fan_in
        );
        prop_assert_eq!(par.merged_edges, seq.merged_edges);
    }

    /// Batch size is a pure throughput knob: any batching produces the
    /// same cover as the sequential reference.
    #[test]
    fn batch_size_is_output_invariant(
        generator in 0u8..3,
        batch in 1usize..5_000,
        seed in 0u64..500,
    ) {
        let stream = generated_stream(generator, 16, 800, 3, seed);
        let cfg = DistConfig::new(4, 3, 0.3, seed).with_sizing(SketchSizing::Budget(600));
        let seq = distributed_k_cover(&stream, &cfg);
        let par = ParallelRunner::new(cfg, 2).with_batch(batch).run(&stream);
        prop_assert_eq!(&par.family, &seq.family, "batch={}", batch);
    }

    /// The one-pass partitioner is an exact partition: every edge lands in
    /// exactly one shard buffer, order-preserved, matching the hash route.
    #[test]
    fn partition_is_exact_and_order_preserving(
        generator in 0u8..3,
        shards in 1usize..10,
        seed in 0u64..500,
    ) {
        let stream = generated_stream(generator, 12, 600, 2, seed);
        let buffers = partition_edges(&stream, shards, seed ^ 0x5A, 256);
        prop_assert_eq!(buffers.len(), shards);
        let mut total = 0usize;
        for (i, buf) in buffers.iter().enumerate() {
            total += buf.len();
            for e in buf {
                prop_assert_eq!(
                    coverage_suite::dist::shard_of_edge(*e, shards, seed ^ 0x5A), i,
                    "edge routed to the wrong buffer"
                );
            }
        }
        let mut want = Vec::new();
        stream.for_each(&mut |e| want.push(e));
        prop_assert_eq!(total, want.len(), "buffers must partition the stream");
        // Order within each shard is the arrival order.
        for (i, buf) in buffers.iter().enumerate() {
            let filtered: Vec<Edge> = want
                .iter()
                .copied()
                .filter(|&e| coverage_suite::dist::shard_of_edge(e, shards, seed ^ 0x5A) == i)
                .collect();
            prop_assert_eq!(buf, &filtered);
        }
    }
}

/// Degenerate-shape corners for both ingest modes: the executor must
/// neither hang nor diverge from the serial simulation when the stream
/// is empty, when there is a single shard, when there are far more
/// shards than edges, or when the channel batch is a single edge.
#[test]
fn degenerate_shapes_match_serial() {
    let run_both = |cfg: DistConfig, threads: usize, batch: usize, stream: &VecStream| {
        let serial = distributed_k_cover_serial(stream, &cfg);
        for mode in [IngestMode::Pipelined, IngestMode::TwoBarrier] {
            let par = ParallelRunner::new(cfg, threads)
                .with_ingest_mode(mode)
                .with_batch(batch)
                .run(stream);
            assert_eq!(
                par.family, serial.family,
                "mode={mode:?} threads={threads} batch={batch}"
            );
            assert_eq!(par.merged_edges, serial.merged_edges);
        }
    };

    // Zero-edge stream: nothing to partition, nothing to build — every
    // executor must still agree (on the empty family) without deadlock.
    let empty = VecStream::new(6, Vec::new());
    run_both(
        DistConfig::new(4, 2, 0.3, 5).with_sizing(SketchSizing::Budget(100)),
        3,
        64,
        &empty,
    );

    // Single shard: the whole stream funnels through one worker; the
    // pipelined channel degenerates to a producer/consumer pair.
    let small = generated_stream(2, 10, 300, 2, 13);
    run_both(
        DistConfig::new(1, 2, 0.3, 13).with_sizing(SketchSizing::Budget(400)),
        4,
        128,
        &small,
    );

    // More shards than edges: most shards receive nothing; their empty
    // sketches must merge as identities.
    let tiny = VecStream::new(4, (0..5u64).map(|e| Edge::new((e % 4) as u32, e)).collect());
    run_both(
        DistConfig::new(16, 2, 0.3, 7).with_sizing(SketchSizing::Budget(50)),
        8,
        32,
        &tiny,
    );

    // Batch size 1: maximal channel traffic, one edge per send — the
    // ordering contract must survive the chattiest schedule.
    let chatty = generated_stream(0, 8, 200, 2, 29);
    run_both(
        DistConfig::new(3, 2, 0.3, 29).with_sizing(SketchSizing::Budget(300)),
        3,
        1,
        &chatty,
    );
}

/// The same degenerate corners through the dynamic (signed-update)
/// executor, via the insert-only embedding.
#[test]
fn degenerate_shapes_match_serial_dynamic() {
    let empty = VecStream::new(6, Vec::new());
    let tiny = VecStream::new(4, (0..5u64).map(|e| Edge::new((e % 4) as u32, e)).collect());
    for (stream, machines, threads) in [(&empty, 4usize, 3usize), (&tiny, 16, 8)] {
        let embedded = InsertOnly::new(stream);
        let cfg = DistConfig::new(machines, 2, 0.3, 3).with_sizing(SketchSizing::Budget(100));
        let serial = dynamic_distributed_k_cover(&embedded, &cfg);
        for mode in [IngestMode::Pipelined, IngestMode::TwoBarrier] {
            let par = ParallelRunner::new(cfg, threads)
                .with_ingest_mode(mode)
                .run_dynamic(&embedded);
            assert_eq!(
                par.family, serial.family,
                "mode={mode:?} machines={machines}"
            );
        }
    }
}

/// Fixed-seed regression: the exact family selected by both runners on a
/// reference workload. If this changes, either the sketch, the sharding
/// hash, or the greedy tie-breaking changed — all contract surface.
#[test]
fn reference_workload_family_pinned() {
    let stream = generated_stream(2, 40, 5_000, 4, 11);
    let cfg = DistConfig::new(6, 4, 0.3, 11).with_sizing(SketchSizing::Budget(2_000));
    let seq = distributed_k_cover(&stream, &cfg);
    let par = ParallelRunner::new(cfg, 4).run(&stream);
    assert_eq!(par.family, seq.family);
    // The literal pinned sequence: greedy recovers the 4 planted sets, in
    // this exact selection order. Update deliberately if the sketch,
    // sharding hash, or greedy tie-breaking intentionally changes.
    assert_eq!(par.family, vec![SetId(2), SetId(0), SetId(1), SetId(3)]);
}
