//! The multiprocess executor's determinism contract, exercised with
//! **real worker subprocesses**: the `coverage` binary Cargo built for
//! this test run, re-invoked in its hidden `worker` mode. For the same
//! `DistConfig`, [`ProcessRunner`] must select the identical cover as
//! the sequential simulation and the in-process [`ParallelRunner`] —
//! for either pipe ship format, and **including runs where workers are
//! killed mid-round** and their shards re-dispatched (the re-shard
//! recovery path), down to the degenerate case where every worker dies
//! and the parent degrades to building shards inline.

use proptest::prelude::*;

use coverage_suite::data::{planted_k_cover, uniform_instance, zipf_instance};
use coverage_suite::prelude::*;

fn worker_command() -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_coverage"), ["worker".to_string()])
}

/// Build a seeded stream from one of the three generator families.
fn generated_stream(generator: u8, n: usize, m: u64, k: usize, seed: u64) -> VecStream {
    let inst = match generator % 3 {
        0 => uniform_instance(n, m, (m / 20).max(8) as usize, seed),
        1 => zipf_instance(n, m, 0.6, 1.05, (m / 8).max(8) as usize, seed),
        _ => planted_k_cover(n, m, k.max(1), (m / 16).max(4) as usize, seed).instance,
    };
    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(seed ^ 0xA5).apply(stream.edges_mut());
    stream
}

/// A signed update stream: every edge inserted, a deterministic subset
/// deleted again.
fn signed_updates(stream: &VecStream, churn_seed: u64) -> Vec<SignedEdge> {
    let mut updates: Vec<SignedEdge> = stream
        .edges()
        .iter()
        .copied()
        .map(SignedEdge::insert)
        .collect();
    updates.extend(
        stream
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                (*i as u64 ^ churn_seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 62 == 0
            })
            .map(|(_, e)| SignedEdge::delete(*e)),
    );
    updates
}

#[test]
fn multiprocess_family_matches_serial_and_parallel() {
    let stream = generated_stream(2, 30, 3_000, 4, 11);
    let cfg = DistConfig::new(6, 4, 0.3, 11).with_sizing(SketchSizing::Budget(1_500));
    let serial = distributed_k_cover(&stream, &cfg);
    let parallel = ParallelRunner::new(cfg, 3).run(&stream);
    let process = ProcessRunner::new(cfg, worker_command(), 3)
        .run(&stream)
        .expect("multiprocess run");
    assert_eq!(process.family, serial.family);
    assert_eq!(process.family, parallel.family);
    assert_eq!(process.merged_edges, serial.merged_edges);
    assert_eq!(process.workers_spawned, 3);
    assert_eq!(process.workers_lost, 0);
    assert!(
        process.wire_bytes > 0,
        "worker replies travel a real pipe and must be accounted"
    );
}

#[test]
fn ship_format_does_not_change_the_family_but_changes_the_bytes() {
    let stream = generated_stream(0, 24, 2_000, 3, 5);
    let cfg = DistConfig::new(5, 3, 0.3, 5).with_sizing(SketchSizing::Budget(1_200));
    let binary = ProcessRunner::new(cfg, worker_command(), 2)
        .with_ship_format(ShipFormat::Binary)
        .run(&stream)
        .expect("binary run");
    let json = ProcessRunner::new(cfg, worker_command(), 2)
        .with_ship_format(ShipFormat::Json)
        .run(&stream)
        .expect("json run");
    assert_eq!(binary.family, json.family);
    assert!(
        binary.wire_bytes < json.wire_bytes,
        "binary pipes ({}) must be tighter than json pipes ({})",
        binary.wire_bytes,
        json.wire_bytes
    );
}

#[test]
fn killed_workers_reshard_and_the_family_survives() {
    let stream = generated_stream(2, 30, 3_000, 4, 23);
    let cfg = DistConfig::new(8, 4, 0.3, 23).with_sizing(SketchSizing::Budget(1_500));
    let serial = distributed_k_cover(&stream, &cfg);
    // Kill two of three workers on their first shard dispatch.
    let process = ProcessRunner::new(cfg, worker_command(), 3)
        .with_injected_failures([0, 1])
        .run(&stream)
        .expect("run with injected kills");
    assert_eq!(
        process.family, serial.family,
        "re-shard recovery must not change the selected cover"
    );
    assert_eq!(process.workers_lost, 2);
    assert!(process.shards_resharded >= 2);
    assert_eq!(process.shards_built_inline, 0);
}

#[test]
fn total_worker_loss_degrades_to_inline_and_still_matches() {
    let stream = generated_stream(1, 20, 1_500, 3, 31);
    let cfg = DistConfig::new(6, 3, 0.3, 31).with_sizing(SketchSizing::Budget(1_000));
    let serial = distributed_k_cover(&stream, &cfg);
    // A single worker that dies on its first job: no survivors, so the
    // parent must build every remaining shard inline.
    let process = ProcessRunner::new(cfg, worker_command(), 1)
        .with_injected_failures([0])
        .run(&stream)
        .expect("run past total worker loss");
    assert_eq!(process.family, serial.family);
    assert_eq!(process.workers_lost, 1);
    assert!(
        process.shards_built_inline >= 1,
        "with no survivors the parent builds shards itself"
    );
}

#[test]
fn hung_worker_is_reaped_by_the_deadline_and_the_family_survives() {
    let stream = generated_stream(2, 30, 3_000, 4, 47);
    let cfg = DistConfig::new(8, 4, 0.3, 47).with_sizing(SketchSizing::Budget(1_500));
    let serial = distributed_k_cover(&stream, &cfg);
    // Shard 1's worker stalls forever; only the deadline reaper can get
    // the shard back. A generous timeout keeps slow-CI runs honest while
    // an infinite hang still trips it.
    let process = ProcessRunner::new(cfg, worker_command(), 3)
        .with_fault_plan(FaultPlan::new(47).with_fault(1, Fault::Hang))
        .with_job_timeout(std::time::Duration::from_millis(500))
        .run(&stream)
        .expect("run past a hung worker");
    assert_eq!(
        process.family, serial.family,
        "deadline-reaped shards must rebuild bit-identically"
    );
    assert!(
        process.deadline_reaps >= 1,
        "the stalled worker must be reaped by the deadline wheel"
    );
    assert!(process.workers_lost >= 1);
    assert!(process.shards_resharded >= 1 || process.shards_built_inline >= 1);
}

#[test]
fn corrupt_reply_is_detected_and_the_shard_requeued() {
    let stream = generated_stream(0, 24, 2_000, 3, 53);
    let cfg = DistConfig::new(6, 3, 0.3, 53).with_sizing(SketchSizing::Budget(1_200));
    let serial = distributed_k_cover(&stream, &cfg);
    let process = ProcessRunner::new(cfg, worker_command(), 2)
        .with_fault_plan(FaultPlan::new(53).with_fault(2, Fault::CorruptReply))
        .run(&stream)
        .expect("run past a corrupted reply");
    assert_eq!(
        process.family, serial.family,
        "a checksum-failed frame must be requeued, not trusted"
    );
    assert!(
        process.proto_faults >= 1,
        "the corrupted frame must surface as a typed protocol fault"
    );
}

#[test]
fn dynamic_multiprocess_matches_the_serial_dynamic_reference() {
    let stream = generated_stream(2, 24, 2_000, 3, 41);
    let dyn_stream = VecDynamicStream::new(24, signed_updates(&stream, 41));
    let cfg = DistConfig::new(5, 3, 0.3, 41).with_sizing(SketchSizing::Budget(1_200));
    let serial = dynamic_distributed_k_cover(&dyn_stream, &cfg);
    let process = ProcessRunner::new(cfg, worker_command(), 3)
        .run_dynamic(&dyn_stream)
        .expect("dynamic multiprocess run");
    assert_eq!(process.family, serial.family);
    assert_eq!(process.sample_level, serial.sample_level);
    assert_eq!(process.recovered_edges, serial.recovered_edges);
    // And the recovery path holds for the linear sketch too.
    let killed = ProcessRunner::new(cfg, worker_command(), 2)
        .with_injected_failures([1])
        .run_dynamic(&dyn_stream)
        .expect("dynamic run with a kill");
    assert_eq!(killed.family, serial.family);
    assert_eq!(killed.workers_lost, 1);
}

proptest! {
    // Each case spawns real processes; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The determinism contract across generators, worker counts, ship
    /// formats, and injected kills, property-tested end to end.
    #[test]
    fn process_determinism_contract(
        generator in 0u8..3,
        machines in 2usize..8,
        processes in 1usize..4,
        kill_first in 0u8..2,
        ship_json in 0u8..2,
        seed in 0u64..500,
    ) {
        let (kill_first, ship_json) = (kill_first == 1, ship_json == 1);
        let stream = generated_stream(generator, 20, 1_200, 3, seed);
        let cfg = DistConfig::new(machines, 3, 0.3, seed)
            .with_sizing(SketchSizing::Budget(900));
        let serial = distributed_k_cover(&stream, &cfg);
        let mut runner = ProcessRunner::new(cfg, worker_command(), processes)
            .with_ship_format(if ship_json { ShipFormat::Json } else { ShipFormat::Binary });
        if kill_first {
            runner = runner.with_injected_failures([0]);
        }
        let process = runner.run(&stream).expect("multiprocess run");
        prop_assert_eq!(
            &process.family, &serial.family,
            "generator={} machines={} processes={} kill={} json={}",
            generator, machines, processes, kill_first, ship_json
        );
        prop_assert_eq!(process.merged_edges, serial.merged_edges);
    }
}
