//! The serving subsystem's torn-state contract, exercised under real
//! concurrency: writer threads stream updates through the bounded
//! queue while reader threads query published snapshots, and **every**
//! answer must match a serially rebuilt sketch at the answer's
//! reported epoch — bit-identically ([`QueryAnswer::bit_eq`], and
//! [`EpochSnapshot::content_eq`] on the captured snapshots themselves).
//! A torn read (a view from one epoch tagged with another, a family
//! computed across a publish) cannot pass, because the journal prefix
//! of length `updates_applied` pins the exact store state the epoch
//! tag claims.
//!
//! Grid: {uniform, zipf, planted} × {insert-only bank, churn dynamic},
//! concurrent writers × readers, plus a proptest sweep over seeds,
//! publication cadence, and batch split.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use coverage_suite::data::{churn_workload, planted_k_cover, uniform_instance, zipf_instance};
use coverage_suite::prelude::*;

fn instance_of(generator: u8, seed: u64) -> CoverageInstance {
    match generator % 3 {
        0 => uniform_instance(24, 1_500, 60, seed),
        1 => zipf_instance(24, 1_500, 0.6, 1.05, 180, seed),
        _ => planted_k_cover(24, 1_500, 4, 80, seed).instance,
    }
}

fn insert_stream(inst: &CoverageInstance, seed: u64) -> Vec<SignedEdge> {
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(seed ^ 0xA5).apply(stream.edges_mut());
    stream
        .edges()
        .iter()
        .copied()
        .map(SignedEdge::insert)
        .collect()
}

fn bank_config(seed: u64, publish_every: u64) -> ServeConfig {
    ServeConfig::bank_ladder(24, 4, 0.4, 1_200, seed)
        .with_publish_every(publish_every)
        .with_queue_batches(4)
        .with_journal(true)
}

fn dynamic_config(seed: u64, publish_every: u64) -> ServeConfig {
    let params = DynamicSketchParams::new(SketchParams::with_budget(24, 4, 0.4, 1_200));
    ServeConfig::dynamic(params, seed)
        .with_publish_every(publish_every)
        .with_queue_batches(4)
        .with_journal(true)
}

/// Run `writers` concurrent submitters against `readers` concurrent
/// query loops; return every recorded answer, every distinct snapshot
/// a reader observed, and the engine's final state.
fn mixed_load(
    cfg: &ServeConfig,
    updates: &[SignedEdge],
    writers: usize,
    readers: usize,
    batch: usize,
    ks: &[usize],
) -> (
    Vec<(usize, QueryAnswer)>,
    Vec<Arc<EpochSnapshot>>,
    ServeFinish,
) {
    let engine = ServeEngine::start(cfg.clone());
    let done = AtomicBool::new(false);
    let batches: Vec<Vec<SignedEdge>> = updates.chunks(batch.max(1)).map(<[_]>::to_vec).collect();
    let (answers, snapshots) = crossbeam::scope(|scope| {
        let mut reader_handles = Vec::new();
        for r in 0..readers {
            let mut handle = engine.query_handle();
            let done = &done;
            reader_handles.push(scope.spawn(move |_| {
                let mut answers = Vec::new();
                let mut snapshots: Vec<Arc<EpochSnapshot>> = Vec::new();
                let mut turn = r; // desynchronize the readers' k cycles
                while !done.load(Ordering::Relaxed) && answers.len() < 500 {
                    let snap = handle.snapshot();
                    if snapshots.last().map(|s| s.epoch) != Some(snap.epoch) {
                        snapshots.push(Arc::clone(&snap));
                    }
                    let k = ks[turn % ks.len()];
                    answers.push((k, handle.query(k)));
                    turn += 1;
                }
                (answers, snapshots)
            }));
        }
        let mut writer_handles = Vec::new();
        for w in 0..writers {
            let engine = &engine;
            let batches = &batches;
            writer_handles.push(scope.spawn(move |_| {
                // Round-robin split: writer w submits batches w, w+W, …
                // Application order is whatever the queue serializes —
                // the journal records it, the oracle replays it.
                for b in batches.iter().skip(w).step_by(writers.max(1)) {
                    engine.submit(b.clone()).expect("engine accepts the batch");
                }
            }));
        }
        for h in writer_handles {
            h.join().expect("writer must not panic");
        }
        engine.flush().expect("flush after writers");
        done.store(true, Ordering::Relaxed);
        let mut answers = Vec::new();
        let mut snapshots: Vec<Arc<EpochSnapshot>> = Vec::new();
        for h in reader_handles {
            let (a, s) = h.join().expect("reader must not panic");
            answers.extend(a);
            snapshots.extend(s);
        }
        (answers, snapshots)
    })
    .expect("scoped threads join");
    // One post-flush answer per k so the final epoch is always checked.
    let mut answers = answers;
    for &k in ks {
        answers.push((k, engine.query(k)));
    }
    (answers, snapshots, engine.finish())
}

/// The oracle: rebuild the store serially from the journal prefix each
/// epoch claims and demand bit-identical snapshots and answers.
fn verify(
    cfg: &ServeConfig,
    answers: &[(usize, QueryAnswer)],
    snapshots: &[Arc<EpochSnapshot>],
    fin: &ServeFinish,
) {
    // Epoch → updates_applied must be a function (a torn tag breaks it).
    let mut applied_at: HashMap<u64, u64> = HashMap::new();
    for (_, a) in answers {
        let prev = applied_at.insert(a.epoch, a.updates_applied);
        assert!(
            prev.is_none() || prev == Some(a.updates_applied),
            "epoch {} reported two applied counts: {:?} vs {}",
            a.epoch,
            prev,
            a.updates_applied
        );
    }
    for s in snapshots {
        let prev = applied_at.insert(s.epoch, s.updates_applied);
        assert!(
            prev.is_none() || prev == Some(s.updates_applied),
            "snapshot epoch {} disagrees with answers",
            s.epoch
        );
    }
    // Serial rebuild per distinct epoch, then compare everything
    // recorded at that epoch against it.
    let mut rebuilt: HashMap<u64, EpochSnapshot> = HashMap::new();
    for (&epoch, &applied) in &applied_at {
        let mut store = LiveStore::new(cfg);
        store.apply(&fin.journal[..applied as usize]);
        // Epoch 0 mirrors the engine: a dynamic store with nothing
        // applied may not recover, and the engine falls back to the
        // guess-free empty snapshot there.
        let snap = store.snapshot(epoch, applied).unwrap_or_else(|| {
            assert_eq!(applied, 0, "only the empty prefix may fail to export");
            EpochSnapshot::empty(store.num_sets())
        });
        rebuilt.insert(epoch, snap);
    }
    for s in snapshots {
        assert!(
            s.content_eq(&rebuilt[&s.epoch]),
            "published snapshot at epoch {} is not the journal-prefix rebuild",
            s.epoch
        );
    }
    let mut checked: HashMap<(u64, usize), QueryAnswer> = HashMap::new();
    for (k, a) in answers {
        let reference = checked
            .entry((a.epoch, *k))
            .or_insert_with(|| answer_query(&rebuilt[&a.epoch], *k));
        assert!(
            a.bit_eq(reference),
            "answer at epoch {} (k={k}) diverges from the serial rebuild",
            a.epoch
        );
    }
}

fn run_case(cfg: &ServeConfig, updates: &[SignedEdge], batch: usize, ks: &[usize]) {
    let (answers, snapshots, fin) = mixed_load(cfg, updates, 2, 2, batch, ks);
    assert_eq!(fin.journal.len(), updates.len(), "drain applies everything");
    assert_eq!(fin.stats.staleness(), 0);
    assert!(fin.stats.epoch >= 1);
    verify(cfg, &answers, &snapshots, &fin);
}

#[test]
fn insert_only_answers_match_serial_rebuild_across_generators() {
    for generator in 0..3u8 {
        let seed = 31 + generator as u64;
        let inst = instance_of(generator, seed);
        let updates = insert_stream(&inst, seed);
        let cfg = bank_config(seed, (updates.len() as u64 / 6).max(1));
        run_case(&cfg, &updates, 96, &[1, 2, 4]);
    }
}

#[test]
fn churn_answers_match_serial_rebuild_across_generators() {
    for generator in 0..3u8 {
        let seed = 77 + generator as u64;
        let inst = instance_of(generator, seed);
        let w = churn_workload(&inst, 0.4, seed ^ 0xD11);
        let updates = w.stream.updates().to_vec();
        let cfg = dynamic_config(seed, (updates.len() as u64 / 6).max(1));
        run_case(&cfg, &updates, 96, &[2, 4]);
    }
}

#[test]
fn identical_input_rebuilds_identical_final_snapshot() {
    // Same updates through two engines (different batch splits) must
    // publish content-identical final epochs: the split-independence
    // the replay oracle stands on.
    let inst = instance_of(1, 5);
    let updates = insert_stream(&inst, 5);
    let cfg = bank_config(5, 400);
    let mut finals = Vec::new();
    for batch in [33, 512] {
        let engine = ServeEngine::start(cfg.clone());
        for chunk in updates.chunks(batch) {
            engine.submit(chunk.to_vec()).unwrap();
        }
        engine.flush().unwrap();
        let mut handle = engine.query_handle();
        finals.push(handle.snapshot());
        engine.finish();
    }
    // Epoch counters differ with the split; content must not.
    let (a, b) = (&finals[0], &finals[1]);
    assert_eq!(a.updates_applied, b.updates_applied);
    let a_at_b = EpochSnapshot {
        epoch: b.epoch,
        ..(**a).clone()
    };
    assert!(a_at_b.content_eq(b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized sweep: any generator, cadence, batch split, and seed
    /// — concurrent answers still replay exactly.
    #[test]
    fn mixed_load_is_consistent(
        generator in 0u8..3,
        seed in 1u64..1_000,
        publish_every in 50u64..400,
        batch in 17usize..257,
        churn_bit in 0u8..2,
    ) {
        let inst = instance_of(generator, seed);
        let (cfg, updates) = if churn_bit == 1 {
            let w = churn_workload(&inst, 0.35, seed ^ 0xD11);
            (dynamic_config(seed, publish_every), w.stream.updates().to_vec())
        } else {
            (bank_config(seed, publish_every), insert_stream(&inst, seed))
        };
        let (answers, snapshots, fin) = mixed_load(&cfg, &updates, 2, 2, batch, &[2, 4]);
        prop_assert_eq!(fin.journal.len(), updates.len());
        verify(&cfg, &answers, &snapshots, &fin);
    }
}
