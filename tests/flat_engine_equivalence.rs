//! Property tests pinning the flat arena ingestion engine
//! (`ThresholdSketch`) bit-identical to the retired map-backed engine
//! (`ReferenceSketch`) — the engine-equivalence contract of ISSUE 4.
//!
//! "Bit-identical" means the full logical sketch state agrees:
//!
//! * retained `(element, hash, sets, truncated)` content, in canonical
//!   form (`canonical_content` on both engines);
//! * the acceptance bound and stored-edge count;
//! * every streaming counter (arrivals, bound/cap rejections,
//!   duplicates, evictions).
//!
//! The contract is exercised across the axes that could plausibly
//! diverge the engines: workload generators (uniform / zipf / planted),
//! shuffled arrival orders (including the adversarial descending-hash
//! order that maximizes evictions), duplicate-heavy streams (the
//! deferred-sort dedup path), merge splits of every shape, and the
//! bank's shared-hash + pre-filter batch path.

use proptest::prelude::*;

use coverage_suite::core::Edge;
use coverage_suite::prelude::*;
use coverage_suite::sketch::SketchParams;

/// Compare the complete logical state of the two engines.
fn assert_engines_agree(flat: &ThresholdSketch, reference: &ReferenceSketch, ctx: &str) {
    assert_eq!(
        flat.acceptance_bound(),
        reference.acceptance_bound(),
        "{ctx}: acceptance bound"
    );
    assert_eq!(
        flat.edges_stored(),
        reference.edges_stored(),
        "{ctx}: stored edges"
    );
    assert_eq!(flat.counters(), reference.counters(), "{ctx}: counters");
    assert_eq!(
        flat.canonical_content(),
        reference.canonical_content(),
        "{ctx}: retained content"
    );
}

/// The three workload generators of the experiment suite, materialized
/// as edge lists small enough for proptest case counts.
fn generator_edges(generator: u8, seed: u64) -> (usize, Vec<Edge>) {
    let n = 24;
    let inst = match generator % 3 {
        0 => uniform_instance(n, 1_500, 60, seed),
        1 => zipf_instance(n, 1_500, 0.7, 1.1, 300, seed),
        _ => planted_k_cover(n, 1_500, 4, 90, seed).instance,
    };
    (n, VecStream::from_instance(&inst).edges().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single build: generators × arrival orders × budgets. Includes the
    /// descending-hash order, which maximizes evictions and therefore
    /// the arena's free-list/backward-shift churn.
    #[test]
    fn flat_equals_reference_across_generators_and_orders(
        generator in 0u8..3,
        order in 0u8..4,
        seed in 0u64..500,
        budget in 60usize..600,
    ) {
        let (n, mut edges) = generator_edges(generator, seed.wrapping_add(1) | 1);
        let order = match order {
            0 => ArrivalOrder::AsIs,
            1 => ArrivalOrder::Random(seed ^ 0x5EED),
            2 => ArrivalOrder::ByHashDesc(seed),
            _ => ArrivalOrder::ElementGrouped(3),
        };
        order.apply(&mut edges);
        let stream = VecStream::new(n, edges);
        let params = SketchParams::with_budget(n, 3, 0.4, budget);
        let flat = ThresholdSketch::from_stream(params, seed, &stream);
        let reference = ReferenceSketch::from_stream(params, seed, &stream);
        assert_engines_agree(&flat, &reference, "single build");
    }

    /// Duplicate-heavy streams: the flat engine defers list sorting to
    /// report time, so its arrival-time duplicate scan must still count
    /// and drop exactly what the reference's binary search does — also
    /// when the degree cap binds first (cap rejection outranks dedup).
    #[test]
    fn flat_equals_reference_on_duplicate_heavy_streams(
        seed in 0u64..500,
        elems in 1u64..40,
        reps in 2usize..6,
    ) {
        let n = 30;
        let mut edges = Vec::new();
        for r in 0..reps {
            for e in 0..elems {
                for s in 0..n as u32 {
                    if !(e + s as u64 + r as u64).is_multiple_of(3) {
                        edges.push(Edge::new(s, e));
                    }
                }
            }
        }
        ArrivalOrder::Random(seed).apply(&mut edges);
        // Small cap (k large) so cap-rejection and dedup interleave.
        let params = SketchParams::with_budget(n, 8, 0.6, 200);
        let stream = VecStream::new(n, edges);
        let flat = ThresholdSketch::from_stream(params, seed, &stream);
        let reference = ReferenceSketch::from_stream(params, seed, &stream);
        // The repeated grid must hit one of the two drop paths (the tight
        // cap may swallow repeats before the dedup scan ever fires).
        let c = flat.counters();
        prop_assert!(
            c.duplicates + c.rejected_by_cap > 0,
            "workload must exercise dedup or cap rejection"
        );
        assert_engines_agree(&flat, &reference, "duplicate-heavy");
    }

    /// Merge splits: partition the stream into `parts` shards round-robin,
    /// build each shard on both engines, fold in the proptest-chosen
    /// direction, and compare — the canonical min-id truncation and
    /// bound-intersection logic must coincide exactly.
    #[test]
    fn flat_merge_equals_reference_merge(
        generator in 0u8..3,
        seed in 0u64..500,
        parts in 2usize..5,
        fold_right in 0u8..2,
        budget in 60usize..400,
    ) {
        let (n, mut edges) = generator_edges(generator, seed | 1);
        ArrivalOrder::Random(seed ^ 0xF01D).apply(&mut edges);
        let params = SketchParams::with_budget(n, 3, 0.4, budget);
        let mut flat_parts: Vec<ThresholdSketch> =
            (0..parts).map(|_| ThresholdSketch::new(params, seed)).collect();
        let mut ref_parts: Vec<ReferenceSketch> =
            (0..parts).map(|_| ReferenceSketch::new(params, seed)).collect();
        for (i, &e) in edges.iter().enumerate() {
            flat_parts[i % parts].update(e);
            ref_parts[i % parts].update(e);
        }
        if fold_right == 1 {
            flat_parts.reverse();
            ref_parts.reverse();
        }
        let mut flat = flat_parts.remove(0);
        for p in &flat_parts {
            flat.merge_from(p);
        }
        let mut reference = ref_parts.remove(0);
        for p in &ref_parts {
            reference.merge_from(p);
        }
        assert_engines_agree(&flat, &reference, "merged build");
    }

    /// The bank's shared-hash + bank-wide-bound pre-filter path must be
    /// per-sketch indistinguishable from reference sketches that each
    /// hash and bound-check every edge themselves.
    #[test]
    fn shared_hash_bank_equals_reference_sketches(
        generator in 0u8..3,
        seed in 0u64..500,
        batch in 1usize..700,
    ) {
        let (n, mut edges) = generator_edges(generator, seed | 1);
        ArrivalOrder::Random(seed).apply(&mut edges);
        let guesses = [
            SketchParams::with_budget(n, 1, 0.5, 80),
            SketchParams::with_budget(n, 3, 0.4, 200),
            SketchParams::with_budget(n, 6, 0.3, 420),
        ];
        let stream = VecStream::new(n, edges);
        let mut bank = SketchBank::new(guesses, seed);
        bank.consume_batched(&stream, batch);
        for (flat, &p) in bank.sketches().iter().zip(&guesses) {
            let reference = ReferenceSketch::from_stream(p, seed, &stream);
            assert_engines_agree(flat, &reference, "bank guess");
        }
    }
}
