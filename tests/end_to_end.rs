//! End-to-end integration tests: every streaming pipeline exercised
//! across all crates (data generation → arrival order → sketch →
//! algorithm → validation), with ground truth from planted optima.

use coverage_suite::core::validate::{check_k_cover, check_partial_cover, check_set_cover};
use coverage_suite::prelude::*;

const E: f64 = std::f64::consts::E;

#[test]
fn kcover_pipeline_beats_guarantee_on_all_orders() {
    let planted = planted_k_cover(60, 8_000, 6, 200, 11);
    let inst = &planted.instance;
    for order in [
        ArrivalOrder::AsIs,
        ArrivalOrder::Random(1),
        ArrivalOrder::SetGrouped(2),
        ArrivalOrder::ElementGrouped(3),
        ArrivalOrder::ByHashDesc(99),
    ] {
        let mut stream = VecStream::from_instance(inst);
        order.apply(stream.edges_mut());
        let cfg = KCoverConfig::new(6, 0.25, 99).with_sizing(SketchSizing::Budget(10_000));
        let res = k_cover_streaming(&stream, &cfg);
        check_k_cover(inst, &res.family, 6).expect("valid family");
        let achieved = inst.coverage(&res.family) as f64;
        let bound = (1.0 - 1.0 / E - 0.25) * planted.optimal_value as f64;
        assert!(
            achieved >= bound,
            "{order:?}: achieved {achieved} < bound {bound}"
        );
    }
}

#[test]
fn outlier_pipeline_meets_lambda_and_size_bounds() {
    for (seed, lambda) in [(1u64, 0.2), (2, 0.1), (3, 0.05)] {
        let planted = planted_set_cover(40, 6_000, 6, 150, seed);
        let inst = &planted.instance;
        let mut stream = VecStream::from_instance(inst);
        ArrivalOrder::Random(seed).apply(stream.edges_mut());
        let cfg =
            OutlierConfig::new(lambda, 0.5, seed ^ 7).with_sizing(SketchSizing::Budget(8_000));
        let res = set_cover_outliers(&stream, &cfg);
        assert!(res.verified, "λ={lambda} seed={seed}: no guess verified");
        // Allow the sketch's ε-slack on top of λ when validating.
        check_partial_cover(inst, &res.family, lambda + 0.05)
            .unwrap_or_else(|e| panic!("λ={lambda} seed={seed}: {e}"));
        let size_bound =
            (1.0 + 0.5) * planted.optimal_value as f64 * (1.0 / lambda).ln() * 1.25 + 2.0;
        assert!(
            (res.family.len() as f64) <= size_bound,
            "λ={lambda}: {} sets > {size_bound}",
            res.family.len()
        );
    }
}

#[test]
fn multipass_pipeline_produces_true_covers() {
    for r in [2usize, 3, 5] {
        let planted = planted_set_cover(30, 4_000, 5, 120, r as u64);
        let inst = &planted.instance;
        let mut stream = VecStream::from_instance(inst);
        ArrivalOrder::Random(5).apply(stream.edges_mut());
        let cfg = MultiPassConfig::new(r, 0.5, 77)
            .with_m(inst.num_elements())
            .with_sizing(SketchSizing::Budget(5_000));
        let res = set_cover_multipass(&stream, &cfg);
        check_set_cover(inst, &res.family).expect("must fully cover");
        assert_eq!(res.passes as usize, 2 * (r - 1) + 1);
        assert!(
            res.family.len() as f64
                <= (1.0 + 0.5) * (inst.num_elements() as f64).ln() * planted.optimal_value as f64,
            "r={r}: cover size {}",
            res.family.len()
        );
    }
}

#[test]
fn sketch_space_is_independent_of_m() {
    // Same n, k, budget; m grows 50x — the sketch's peak must not move.
    let mut peaks = Vec::new();
    for m in [2_000u64, 20_000, 100_000] {
        let inst = uniform_instance(80, m, 400, 13);
        let stream = VecStream::from_instance(&inst);
        let cfg = KCoverConfig::new(8, 0.25, 3).with_sizing(SketchSizing::Budget(3_000));
        let res = k_cover_streaming(&stream, &cfg);
        peaks.push(res.space.peak_edges);
    }
    let min = *peaks.iter().min().unwrap() as f64;
    let max = *peaks.iter().max().unwrap() as f64;
    assert!(max / min < 1.05, "sketch space moved with m: {peaks:?}");
}

#[test]
fn baselines_and_ours_on_one_workload() {
    let planted = planted_k_cover(50, 5_000, 5, 150, 21);
    let inst = &planted.instance;
    let k = 5;

    let mut edge_stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(1).apply(edge_stream.edges_mut());
    let mut set_stream = VecStream::from_instance(inst);
    ArrivalOrder::SetGrouped(1).apply(set_stream.edges_mut());

    let ours = k_cover_streaming(
        &edge_stream,
        &KCoverConfig::new(k, 0.2, 9).with_sizing(SketchSizing::Budget(8_000)),
    );
    let sg = saha_getoor_k_cover(&set_stream, k);
    let sieve = sieve_k_cover(&set_stream, k, 0.1);
    let all = store_all_k_cover(&edge_stream, k);

    let opt = planted.optimal_value as f64;
    let cov = |f: &[SetId]| inst.coverage(f) as f64;
    // Each algorithm clears its own theoretical bar…
    assert!(cov(&ours.family) >= (1.0 - 1.0 / E - 0.2) * opt);
    assert!(cov(&sg.family) >= 0.25 * opt);
    assert!(cov(&sieve.family) >= (0.5 - 0.1) * opt);
    assert!(cov(&all.family) >= (1.0 - 1.0 / E) * opt);
    // …and ours dominates the 1/4 and 1/2 baselines on planted inputs.
    assert!(cov(&ours.family) >= cov(&sg.family));
    assert!(cov(&ours.family) + 1.0 >= cov(&sieve.family));
}

#[test]
fn disjointness_instances_resolved_with_full_budget() {
    use coverage_suite::lb::disjointness_instance;
    // With budget ≥ 2n the sketch stores everything and distinguishes
    // optimum 1 from 2 perfectly (Theorem 1.2 says *sub-linear* budgets
    // must fail; linear budgets must not).
    for seed in 0..10u64 {
        for intersect in [false, true] {
            let d = disjointness_instance(200, intersect, seed);
            let stream = d.stream();
            let cfg = KCoverConfig::new(1, 0.3, seed).with_sizing(SketchSizing::Budget(1_000));
            let res = k_cover_streaming(&stream, &cfg);
            let got = d.instance().coverage(&res.family);
            assert_eq!(got, d.optimum(), "seed={seed} intersect={intersect}");
        }
    }
}

#[test]
fn oracle_hardness_vs_streaming_on_same_input() {
    use coverage_suite::core::oracle_greedy_k_cover;
    use coverage_suite::lb::GoldBrassInstance;
    // Theorem 1.3's punchline as one test: same instance, two access
    // models, opposite outcomes.
    let gb = GoldBrassInstance::random(600, 60, 3);
    let oracle = gb.noisy_oracle(0.5);
    let via_oracle = oracle_greedy_k_cover(&oracle, 60);
    let oracle_ratio = gb.true_coverage(&via_oracle) as f64 / gb.optimal_value() as f64;

    let inst = gb.to_instance();
    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(8).apply(stream.edges_mut());
    let ours = k_cover_streaming(
        &stream,
        &KCoverConfig::new(60, 0.2, 5).with_sizing(SketchSizing::Budget(30_000)),
    );
    let ours_ratio = inst.coverage(&ours.family) as f64 / gb.optimal_value() as f64;

    assert!(
        oracle_ratio < 0.45,
        "noisy-oracle greedy should collapse, got {oracle_ratio}"
    );
    assert!(
        ours_ratio > 0.6,
        "streaming sketch should succeed, got {ours_ratio}"
    );
    assert!(ours_ratio > oracle_ratio + 0.2);
}
