//! Adversarial decoding: every class of frame corruption — bit flips at
//! every offset, truncation at every length, version bumps, kind
//! swaps, length-field lies — must surface as a **typed**
//! [`WireError`], never a panic, and must leave a receiving sketch's
//! state untouched (decode validates the whole frame before anything
//! is restored or merged).

use coverage_suite::prelude::*;
use coverage_suite::sketch::wire::{checksum64, CHECKSUM_LEN, HEADER_LEN, WIRE_VERSION};
use coverage_suite::sketch::WireError;

/// A small but non-trivial threshold snapshot and its binary frame.
fn threshold_frame() -> (SketchSnapshot, Vec<u8>) {
    let params = SketchParams::with_budget(12, 3, 0.4, 400);
    let mut sketch = ThresholdSketch::new(params, 99);
    let edges: Vec<Edge> = (0..900u64)
        .map(|e| Edge::new((e % 12) as u32, e * 11))
        .collect();
    sketch.update_batch(&edges);
    let snap = SketchSnapshot::of(&sketch);
    let frame = snap.encode_binary();
    (snap, frame)
}

/// A dynamic snapshot and its binary frame.
fn dynamic_frame() -> (DynamicSnapshot, Vec<u8>) {
    let params = DynamicSketchParams::new(SketchParams::with_budget(10, 2, 0.4, 300));
    let mut sketch = DynamicSketch::new(params, 7);
    let updates: Vec<SignedEdge> = (0..500u64)
        .map(|e| {
            let edge = Edge::new((e % 10) as u32, e * 3);
            if e % 7 == 0 {
                SignedEdge::delete(edge)
            } else {
                SignedEdge::insert(edge)
            }
        })
        .collect();
    sketch.update_batch(&updates);
    let snap = DynamicSnapshot::of(&sketch);
    let frame = snap.encode_binary();
    (snap, frame)
}

/// Rewrite a frame's trailing checksum so header/payload edits are
/// *only* caught by the field validation under test, not the checksum.
fn fix_checksum(frame: &mut [u8]) {
    let body = frame.len() - CHECKSUM_LEN;
    let sum = checksum64(&frame[..body]).to_le_bytes();
    frame[body..].copy_from_slice(&sum);
}

/// The transport receive path: decode, then merge into `acc`. On any
/// decode error the accumulator must be byte-for-byte unchanged.
fn receive(acc: &mut ThresholdSketch, frame: &[u8]) -> Result<(), WireError> {
    let snap = SketchSnapshot::decode_binary(frame)?;
    acc.merge_from(&snap.restore());
    Ok(())
}

#[test]
fn every_single_bit_flip_is_rejected() {
    // The checksum covers header + payload and is itself part of the
    // frame, so *any* one-bit corruption must fail to decode — either
    // at a header field check or at the checksum gate. No exceptions,
    // no panics.
    let (_, frame) = threshold_frame();
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut bad = frame.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                SketchSnapshot::decode_binary(&bad).is_err(),
                "flip at byte {byte} bit {bit} must not decode"
            );
        }
    }
}

#[test]
fn every_truncation_is_a_typed_truncated_error() {
    let (_, frame) = threshold_frame();
    for len in 0..frame.len() {
        match SketchSnapshot::decode_binary(&frame[..len]) {
            Err(WireError::Truncated { needed, have }) => {
                assert_eq!(have, len);
                assert!(needed > have, "cut at {len}: needed {needed} > have {have}");
            }
            other => panic!("cut at {len}: expected Truncated, got {other:?}"),
        }
    }
    let (_, dframe) = dynamic_frame();
    for len in 0..dframe.len() {
        assert!(
            matches!(
                DynamicSnapshot::decode_binary(&dframe[..len]),
                Err(WireError::Truncated { .. })
            ),
            "dynamic cut at {len} must be Truncated"
        );
    }
}

#[test]
fn version_bump_is_unsupported_version_not_checksum_noise() {
    // A frame from a future format version must be reported as exactly
    // that — the header is validated before the checksum so the error
    // is actionable, not a generic mismatch.
    let (_, mut frame) = threshold_frame();
    frame[4..6].copy_from_slice(&(WIRE_VERSION + 1).to_le_bytes());
    fix_checksum(&mut frame);
    match SketchSnapshot::decode_binary(&frame) {
        Err(WireError::UnsupportedVersion { found }) => assert_eq!(found, WIRE_VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_unknown_kind_are_typed() {
    let (_, frame) = threshold_frame();
    let mut bad = frame.clone();
    bad[0] = b'X';
    fix_checksum(&mut bad);
    assert!(matches!(
        SketchSnapshot::decode_binary(&bad),
        Err(WireError::BadMagic)
    ));
    let mut bad = frame.clone();
    bad[6] = 0xEE; // kind byte
    fix_checksum(&mut bad);
    assert!(matches!(
        SketchSnapshot::decode_binary(&bad),
        Err(WireError::UnknownKind { found: 0xEE })
    ));
}

#[test]
fn cross_kind_frames_are_rejected_as_wrong_kind() {
    let (_, tframe) = threshold_frame();
    let (_, dframe) = dynamic_frame();
    assert!(matches!(
        DynamicSnapshot::decode_binary(&tframe),
        Err(WireError::WrongKind { .. })
    ));
    assert!(matches!(
        SketchSnapshot::decode_binary(&dframe),
        Err(WireError::WrongKind { .. })
    ));
}

#[test]
fn length_field_lies_are_typed() {
    let (_, frame) = threshold_frame();
    let payload_len = frame.len() - HEADER_LEN - CHECKSUM_LEN;
    // Inflated length: the frame claims more payload than arrives.
    let mut bad = frame.clone();
    bad[8..16].copy_from_slice(&((payload_len + 40) as u64).to_le_bytes());
    fix_checksum(&mut bad);
    assert!(matches!(
        SketchSnapshot::decode_binary(&bad),
        Err(WireError::Truncated { .. })
    ));
    // Deflated length: bytes left over after the declared frame.
    let mut bad = frame.clone();
    bad[8..16].copy_from_slice(&((payload_len.saturating_sub(4)) as u64).to_le_bytes());
    fix_checksum(&mut bad);
    assert!(matches!(
        SketchSnapshot::decode_binary(&bad),
        Err(WireError::TrailingBytes)
    ));
    // Appending junk after a valid frame is equally trailing garbage.
    let mut bad = frame.clone();
    bad.extend_from_slice(&[0u8; 7]);
    assert!(matches!(
        SketchSnapshot::decode_binary(&bad),
        Err(WireError::TrailingBytes)
    ));
}

#[test]
fn corrupt_frames_never_mutate_the_receiving_sketch() {
    let (_, frame) = threshold_frame();
    let params = SketchParams::with_budget(12, 3, 0.4, 400);
    let mut acc = ThresholdSketch::new(params, 99);
    let edges: Vec<Edge> = (0..200u64)
        .map(|e| Edge::new((e % 12) as u32, e * 5 + 1))
        .collect();
    acc.update_batch(&edges);
    let before = acc.canonical_content();
    // Walk every corruption class through the receive path; the
    // accumulator must be untouched by each failed receive …
    let mut cut = frame.clone();
    cut.truncate(frame.len() / 2);
    let mut flipped = frame.clone();
    flipped[HEADER_LEN + 3] ^= 0x10;
    let mut bumped = frame.clone();
    bumped[4..6].copy_from_slice(&(WIRE_VERSION + 9).to_le_bytes());
    fix_checksum(&mut bumped);
    for bad in [&cut, &flipped, &bumped, &frame[..0].to_vec()] {
        assert!(receive(&mut acc, bad).is_err());
        assert_eq!(
            acc.canonical_content(),
            before,
            "failed receive must not mutate"
        );
    }
    // … and a subsequent good receive must still work on the same
    // accumulator (the error left no poisoned half-state behind).
    receive(&mut acc, &frame).expect("clean frame still merges");
    assert_ne!(acc.canonical_content(), before);
}

#[test]
fn dynamic_geometry_lies_are_rejected_without_allocation_blowup() {
    // Rewrite the dynamic payload's cell-count prefix to claim an
    // absurd sparse-cell count; the decoder must refuse (typed) rather
    // than trust it and allocate.
    let (_, frame) = dynamic_frame();
    for len in [0usize, 1, HEADER_LEN, HEADER_LEN + 1] {
        // Sanity: tiny prefixes of the dynamic frame are also typed errors.
        assert!(DynamicSnapshot::decode_binary(&frame[..len]).is_err());
    }
    // Flip payload bytes in bulk (zero the first 16 payload bytes) and
    // fix the checksum: whatever structural lie results, the decoder
    // must answer with a typed error or an equal-value decode — never a
    // panic or a giant allocation.
    let mut bad = frame.clone();
    let end = (HEADER_LEN + 16).min(bad.len() - CHECKSUM_LEN);
    for b in &mut bad[HEADER_LEN..end] {
        *b = 0;
    }
    fix_checksum(&mut bad);
    let _ = DynamicSnapshot::decode_binary(&bad);
}
