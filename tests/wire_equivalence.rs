//! The binary wire format's equivalence contract, property-tested at
//! the workspace level: for **both** snapshot types (threshold and
//! dynamic) across the three workload generators (uniform, zipf,
//! planted),
//!
//! * a binary encode → decode round trip reproduces the snapshot
//!   **bit-identically** (`==` on the full struct, hashes included);
//! * the JSON round trip agrees with the binary round trip;
//! * a tree reduce shipped through the binary transport produces the
//!   same merged sketch as the JSON transport and the in-memory
//!   loopback — same retained content, same counters, same snapshot.
//!
//! Together these pin the codec to the paper's composability story: the
//! wire format is a pure representation change and can never alter what
//! a distributed run computes.

use proptest::prelude::*;

use coverage_suite::data::{planted_k_cover, uniform_instance, zipf_instance};
use coverage_suite::dist::tree_reduce_with;
use coverage_suite::prelude::*;

/// Build a seeded stream from one of the three generator families.
/// `generator`: 0 = uniform, 1 = zipf, 2 = planted.
fn generated_stream(generator: u8, n: usize, m: u64, k: usize, seed: u64) -> VecStream {
    let inst = match generator % 3 {
        0 => uniform_instance(n, m, (m / 20).max(8) as usize, seed),
        1 => zipf_instance(n, m, 0.6, 1.05, (m / 8).max(8) as usize, seed),
        _ => planted_k_cover(n, m, k.max(1), (m / 16).max(4) as usize, seed).instance,
    };
    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(seed ^ 0xA5).apply(stream.edges_mut());
    stream
}

/// A signed update stream derived from the generator: every edge
/// inserted, a seed-chosen subset deleted again (still a valid
/// turnstile history — nothing is deleted before its insert).
fn signed_updates(stream: &VecStream, churn_seed: u64) -> Vec<SignedEdge> {
    let mut updates: Vec<SignedEdge> = stream
        .edges()
        .iter()
        .copied()
        .map(SignedEdge::insert)
        .collect();
    let deletes: Vec<SignedEdge> = stream
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| (*i as u64 ^ churn_seed).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 62 == 0)
        .map(|(_, e)| SignedEdge::delete(*e))
        .collect();
    updates.extend(deletes);
    updates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Threshold snapshots: binary round trip == JSON round trip ==
    /// original, bit-identically, and the restored sketch matches.
    #[test]
    fn threshold_snapshot_roundtrips_bit_identically(
        generator in 0u8..3,
        k in 1usize..6,
        seed in 0u64..1_000,
        budget in 200usize..2_000,
    ) {
        let stream = generated_stream(generator, 24, 1_200, k, seed);
        let params = SketchParams::with_budget(24, k, 0.3, budget);
        let sketch = ThresholdSketch::from_stream(params, seed, &stream);
        let snap = SketchSnapshot::of(&sketch);

        let bin = snap.encode_binary();
        let from_bin = SketchSnapshot::decode_binary(&bin)
            .expect("canonical snapshot frame decodes");
        prop_assert_eq!(&from_bin, &snap, "binary roundtrip must be bit-identical");

        let doc = serde_json::to_string(&snap).expect("render json");
        let from_json: SketchSnapshot = serde_json::from_str(&doc).expect("parse json");
        prop_assert_eq!(&from_json, &snap, "json roundtrip must be bit-identical");

        // The restored sketch carries the same retained content.
        let restored = from_bin.restore();
        prop_assert_eq!(restored.canonical_content(), sketch.canonical_content());
        prop_assert_eq!(restored.acceptance_bound(), sketch.acceptance_bound());
    }

    /// Dynamic snapshots: the linear sketch's cells survive the sparse
    /// binary encoding and the JSON encoding identically.
    #[test]
    fn dynamic_snapshot_roundtrips_bit_identically(
        generator in 0u8..3,
        k in 1usize..5,
        seed in 0u64..1_000,
        budget in 200usize..1_500,
    ) {
        let stream = generated_stream(generator, 20, 800, k, seed);
        let params = DynamicSketchParams::new(SketchParams::with_budget(20, k, 0.3, budget));
        let mut sketch = DynamicSketch::new(params, seed);
        sketch.update_batch(&signed_updates(&stream, seed));
        let snap = DynamicSnapshot::of(&sketch);

        let bin = snap.encode_binary();
        let from_bin = DynamicSnapshot::decode_binary(&bin)
            .expect("dynamic snapshot frame decodes");
        prop_assert_eq!(&from_bin, &snap, "binary roundtrip must be bit-identical");

        let doc = serde_json::to_string(&snap).expect("render json");
        let from_json: DynamicSnapshot = serde_json::from_str(&doc).expect("parse json");
        prop_assert_eq!(&from_json, &snap, "json roundtrip must be bit-identical");
    }

    /// The reduce is transport-invariant: shipping every merge through
    /// the binary codec, the JSON codec, or no codec at all yields the
    /// same merged threshold sketch.
    #[test]
    fn threshold_reduce_is_transport_invariant(
        generator in 0u8..3,
        shards in 2usize..9,
        fan_in in 2usize..5,
        k in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let stream = generated_stream(generator, 20, 1_000, k, seed);
        let params = SketchParams::with_budget(20, k, 0.3, 800);
        let locals = |_: ()| -> Vec<ThresholdSketch> {
            partition_edges(&stream, shards, seed ^ 0x5A, 256)
                .into_iter()
                .map(|shard| {
                    let mut s = ThresholdSketch::new(params, seed);
                    s.update_batch(&shard);
                    s
                })
                .collect()
        };
        let (memory, _) = tree_reduce_with(locals(()), fan_in, ShipFormat::InMemory);
        let (json, _) = tree_reduce_with(locals(()), fan_in, ShipFormat::Json);
        let (binary, rep) = tree_reduce_with(locals(()), fan_in, ShipFormat::Binary);
        let want = SketchSnapshot::of(&memory);
        prop_assert_eq!(&SketchSnapshot::of(&json), &want);
        prop_assert_eq!(&SketchSnapshot::of(&binary), &want);
        // A real reduce over >1 shard must account its shipped bytes.
        if shards > 1 {
            prop_assert!(rep.total_bytes() > 0, "binary reduce ships real bytes");
        }
    }

    /// Same transport invariance for the dynamic (linear) sketch, where
    /// the contract is even stronger: cell-wise bit equality.
    #[test]
    fn dynamic_reduce_is_transport_invariant(
        generator in 0u8..3,
        shards in 2usize..7,
        fan_in in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let stream = generated_stream(generator, 16, 600, 3, seed);
        let updates = signed_updates(&stream, seed ^ 0xD1);
        let dyn_stream = VecDynamicStream::new(16, updates);
        let params = DynamicSketchParams::new(SketchParams::with_budget(16, 3, 0.3, 600));
        let locals = |_: ()| -> Vec<DynamicSketch> {
            partition_updates(&dyn_stream, shards, seed ^ 0x5A, 256)
                .into_iter()
                .map(|shard| {
                    let mut s = DynamicSketch::new(params, seed);
                    s.update_batch(&shard);
                    s
                })
                .collect()
        };
        let (memory, _) = tree_reduce_with(locals(()), fan_in, ShipFormat::InMemory);
        let (json, _) = tree_reduce_with(locals(()), fan_in, ShipFormat::Json);
        let (binary, _) = tree_reduce_with(locals(()), fan_in, ShipFormat::Binary);
        let want = DynamicSnapshot::of(&memory);
        prop_assert_eq!(&DynamicSnapshot::of(&json), &want);
        prop_assert_eq!(&DynamicSnapshot::of(&binary), &want);
    }
}
