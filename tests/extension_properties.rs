//! Property-based tests for the extension surface: weighted coverage,
//! local search, parallel greedy, snapshots, eviction ablation, merging,
//! and instance I/O. Complements `sketch_properties.rs` (core sketch
//! invariants).

use proptest::prelude::*;

use coverage_suite::core::offline::{best_improving_swap, greedy_k_cover};
use coverage_suite::core::{CoverageInstance, Edge};
use coverage_suite::data::{from_json, from_text, to_json, to_text};
use coverage_suite::prelude::*;
use coverage_suite::sketch::SketchParams;

fn edges_strategy(
    max_sets: u32,
    max_elem: u64,
    max_len: usize,
) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec(
        (0..max_sets, 0..max_elem).prop_map(|(s, e)| Edge::new(s, e)),
        0..max_len,
    )
}

fn instance_of(edges: &[Edge], n: usize) -> CoverageInstance {
    CoverageInstance::from_edges(n, edges.iter().copied())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel greedy is output-identical to the sequential naive greedy
    /// for every instance, k, and worker count.
    #[test]
    fn parallel_greedy_equals_sequential(
        edges in edges_strategy(12, 80, 300),
        k in 0usize..8,
        threads in 1usize..6,
    ) {
        let inst = instance_of(&edges, 12);
        let seq = greedy_k_cover(&inst, k);
        let par = parallel_greedy_k_cover(&inst, k, threads);
        prop_assert_eq!(seq.family(), par.family());
        prop_assert_eq!(seq.coverage(), par.coverage());
    }

    /// Greedy's per-step gains never increase (submodularity made visible
    /// in the trace).
    #[test]
    fn greedy_gains_are_monotone(edges in edges_strategy(10, 60, 250), k in 1usize..8) {
        let inst = instance_of(&edges, 10);
        let trace = lazy_greedy_k_cover(&inst, k);
        for w in trace.steps.windows(2) {
            prop_assert!(w[0].gain >= w[1].gain,
                "gain went up: {} then {}", w[0].gain, w[1].gain);
        }
    }

    /// Weighted greedy with uniform weights is exactly unweighted greedy.
    #[test]
    fn uniform_weighted_greedy_is_unweighted(
        edges in edges_strategy(10, 60, 250),
        k in 0usize..6,
    ) {
        let inst = instance_of(&edges, 10);
        let w = ElementWeights::uniform(&inst);
        let wt = weighted_greedy_k_cover(&inst, &w, k);
        let ut = lazy_greedy_k_cover(&inst, k);
        prop_assert_eq!(wt.family(), ut.family());
        prop_assert_eq!(wt.covered_weight() as usize, ut.coverage());
    }

    /// Weighted greedy's self-reported covered weight matches a fresh
    /// recomputation, for arbitrary weights.
    #[test]
    fn weighted_trace_is_consistent(
        edges in edges_strategy(8, 40, 200),
        k in 1usize..6,
        wseed in 0u64..500,
    ) {
        let inst = instance_of(&edges, 8);
        let w = ElementWeights::from_fn(&inst, |id| 1 + (id.0 ^ wseed) % 7);
        let t = weighted_greedy_k_cover(&inst, &w, k);
        prop_assert_eq!(
            t.covered_weight(),
            weighted_coverage(&inst, &w, &t.family())
        );
    }

    /// A converged local search is swap-stable, its reported coverage is
    /// real, and (by the classical bound) twice its coverage dominates
    /// greedy's.
    #[test]
    fn local_search_is_swap_stable(edges in edges_strategy(10, 50, 220), k in 1usize..5) {
        let inst = instance_of(&edges, 10);
        let r = local_search_k_cover(&inst, k);
        prop_assert_eq!(r.coverage, inst.coverage(&r.family));
        if r.converged {
            prop_assert_eq!(best_improving_swap(&inst, &r.family), None);
        }
        let g = lazy_greedy_k_cover(&inst, k).coverage();
        prop_assert!(2 * r.coverage >= g,
            "2·local ({}) < greedy ({})", 2 * r.coverage, g);
    }

    /// Snapshot round-trips preserve the sketch exactly, for any stream.
    #[test]
    fn snapshot_roundtrip_identity(
        edges in edges_strategy(8, 120, 350),
        seed in 0u64..300,
        budget in 8usize..64,
    ) {
        let params = SketchParams::with_budget(8, 2, 0.5, budget);
        let sketch = ThresholdSketch::from_stream(params, seed, &VecStream::new(8, edges));
        let back = SketchSnapshot::of(&sketch).restore();
        prop_assert_eq!(back.acceptance_bound(), sketch.acceptance_bound());
        let mut a: Vec<_> = sketch.retained().map(|(key, h, s)| (key, h, s.to_vec())).collect();
        let mut b: Vec<_> = back.retained().map(|(key, h, s)| (key, h, s.to_vec())).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// JSON wire format survives serialization for any sketch.
    #[test]
    fn snapshot_json_roundtrip(
        edges in edges_strategy(6, 80, 250),
        seed in 0u64..300,
    ) {
        let params = SketchParams::with_budget(6, 2, 0.5, 40);
        let sketch = ThresholdSketch::from_stream(params, seed, &VecStream::new(6, edges));
        let snap = SketchSnapshot::of(&sketch);
        let back = SketchSnapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(snap.bound, back.bound);
        prop_assert_eq!(snap.entries, back.entries);
    }

    /// The max-hash ablated sketch retains exactly the same elements as
    /// the production `ThresholdSketch` on every input.
    #[test]
    fn ablated_maxhash_matches_production(
        edges in edges_strategy(6, 100, 300),
        seed in 0u64..200,
    ) {
        let params = SketchParams::with_budget(6, 2, 0.5, 30);
        let stream = VecStream::new(6, edges);
        let prod = ThresholdSketch::from_stream(params, seed, &stream);
        let abl = AblatedSketch::from_stream(params, seed, EvictionPolicy::MaxHash, &stream);
        let mut p: Vec<u64> = prod.retained().map(|(k, _, _)| k).collect();
        p.sort_unstable();
        prop_assert_eq!(abl.retained_keys(), p);
    }

    /// Merging shard sketches yields the same retained elements in any
    /// association order (the property tree_reduce relies on).
    #[test]
    fn merge_is_association_independent(
        edges in edges_strategy(6, 100, 320),
        seed in 0u64..200,
    ) {
        let params = SketchParams::with_budget(6, 2, 0.5, 40);
        let mut shards: Vec<ThresholdSketch> =
            (0..3).map(|_| ThresholdSketch::new(params, seed)).collect();
        for (i, e) in edges.iter().enumerate() {
            shards[i % 3].update(*e);
        }
        // ((a ⊔ b) ⊔ c) vs (a ⊔ (b ⊔ c))
        let mut left = shards[0].clone();
        left.merge_from(&shards[1]);
        left.merge_from(&shards[2]);
        let mut bc = shards[1].clone();
        bc.merge_from(&shards[2]);
        let mut right = shards[0].clone();
        right.merge_from(&bc);
        let mut l: Vec<u64> = left.retained().map(|(k, _, _)| k).collect();
        let mut r: Vec<u64> = right.retained().map(|(k, _, _)| k).collect();
        l.sort_unstable();
        r.sort_unstable();
        prop_assert_eq!(l, r);
    }

    /// Text and JSON persistence round-trip arbitrary instances.
    #[test]
    fn io_roundtrips(edges in edges_strategy(7, 90, 250)) {
        let inst = instance_of(&edges, 7);
        let t = from_text(to_text(&inst).as_bytes()).unwrap();
        prop_assert_eq!(t.num_sets(), inst.num_sets());
        prop_assert_eq!(t.num_edges(), inst.num_edges());
        let meta = InstanceMeta { name: "p".into(), source: "prop".into() };
        let (j, _) = from_json(&to_json(&inst, &meta)).unwrap();
        prop_assert_eq!(j.num_edges(), inst.num_edges());
        for s in inst.set_ids() {
            let mut a: Vec<u64> = inst.set_elements(s).map(|e| e.0).collect();
            let mut b: Vec<u64> = t.set_elements(s).map(|e| e.0).collect();
            let mut c: Vec<u64> = j.set_elements(s).map(|e| e.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &c);
        }
    }

    /// Weighted partial cover reaches its threshold whenever the full
    /// family covers everything (it always can, by taking all sets).
    #[test]
    fn weighted_partial_cover_reaches_threshold(
        edges in edges_strategy(8, 50, 220),
        lam in 0.0f64..0.9,
        wseed in 0u64..100,
    ) {
        let inst = instance_of(&edges, 8);
        let w = ElementWeights::from_fn(&inst, |id| 1 + (id.0 ^ wseed) % 4);
        let t = weighted_greedy_partial_cover(&inst, &w, lam);
        let need = ((1.0 - lam) * w.total() as f64).ceil() as u64;
        prop_assert!(t.covered_weight() >= need.min(w.total()));
    }
}
