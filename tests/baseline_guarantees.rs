//! Statistical guarantee checks for every baseline, plus failure-injection
//! tests (duplicate edges, empty streams, degenerate parameters) across
//! the whole algorithm surface.

use coverage_suite::core::Edge;
use coverage_suite::prelude::*;

/// Saha–Getoor stays above 1/4 across seeds and workload shapes.
#[test]
fn saha_getoor_quarter_guarantee_across_seeds() {
    for seed in 0..10u64 {
        let p = planted_k_cover(40, 2_000, 5, 350, seed);
        let mut s = VecStream::from_instance(&p.instance);
        ArrivalOrder::SetGrouped(seed).apply(s.edges_mut());
        let res = saha_getoor_k_cover(&s, 5);
        let ratio = p.instance.coverage(&res.family) as f64 / p.optimal_value as f64;
        assert!(ratio >= 0.25, "seed {seed}: SG ratio {ratio} < 1/4");
    }
}

/// SieveStreaming stays above 1/2 − ε across seeds.
#[test]
fn sieve_half_guarantee_across_seeds() {
    for seed in 0..10u64 {
        let p = planted_k_cover(40, 2_000, 5, 300, seed);
        let mut s = VecStream::from_instance(&p.instance);
        ArrivalOrder::SetGrouped(seed ^ 3).apply(s.edges_mut());
        let res = sieve_k_cover(&s, 5, 0.15);
        let ratio = p.instance.coverage(&res.family) as f64 / p.optimal_value as f64;
        assert!(ratio >= 0.35 - 1e-9, "seed {seed}: sieve ratio {ratio}");
    }
}

/// The ℓ₀ exhaustive variant optimizes its sketched objective at least as
/// well as ℓ₀ greedy on small instances.
#[test]
fn l0_exhaustive_dominates_greedy_on_sketched_objective() {
    for seed in 0..5u64 {
        let p = planted_k_cover(9, 300, 3, 40, seed);
        let s = VecStream::from_instance(&p.instance);
        let cfg = L0Config::new(512, seed);
        let g = l0_greedy_k_cover(&s, 3, &cfg);
        let x = l0_exhaustive_k_cover(&s, 3, &cfg);
        assert!(
            x.value_estimate >= g.value_estimate - 1e-9,
            "seed {seed}: exhaustive {} < greedy {}",
            x.value_estimate,
            g.value_estimate
        );
    }
}

/// Duplicate edges (each edge tripled) must not change any algorithm's
/// output relative to the clean stream.
#[test]
fn duplicate_edges_are_harmless() {
    let p = planted_k_cover(30, 1_500, 4, 100, 5);
    let clean: Vec<Edge> = p.instance.edges().collect();
    let mut tripled = Vec::with_capacity(clean.len() * 3);
    for &e in &clean {
        tripled.extend([e, e, e]);
    }
    let mut s_clean = VecStream::new(30, clean);
    let mut s_dup = VecStream::new(30, tripled);
    ArrivalOrder::Random(9).apply(s_clean.edges_mut());
    ArrivalOrder::Random(9).apply(s_dup.edges_mut());

    let cfg = KCoverConfig::new(4, 0.25, 7).with_sizing(SketchSizing::Budget(1_500));
    let a = k_cover_streaming(&s_clean, &cfg);
    let b = k_cover_streaming(&s_dup, &cfg);
    assert_eq!(a.family, b.family, "duplicates changed the k-cover family");
    assert_eq!(
        a.space.peak_edges, b.space.peak_edges,
        "duplicates inflated sketch space"
    );

    let ocfg = OutlierConfig::new(0.1, 0.5, 7).with_sizing(SketchSizing::Budget(2_000));
    let oa = set_cover_outliers(&s_clean, &ocfg);
    let ob = set_cover_outliers(&s_dup, &ocfg);
    assert_eq!(oa.family, ob.family, "duplicates changed the outlier cover");
}

/// Empty streams and k=0 are handled without panics everywhere.
#[test]
fn degenerate_inputs() {
    let empty = VecStream::new(5, vec![]);
    let res = k_cover_streaming(&empty, &KCoverConfig::new(3, 0.3, 1));
    assert!(res.family.is_empty());
    assert_eq!(res.space.peak_edges, 0);

    let res0 = k_cover_streaming(
        &VecStream::new(2, vec![Edge::new(0u32, 1u64)]),
        &KCoverConfig::new(0, 0.3, 1),
    );
    assert!(res0.family.is_empty());

    let sg = saha_getoor_k_cover(&empty, 3);
    assert!(sg.family.is_empty());
    let sv = sieve_k_cover(&empty, 3, 0.2);
    assert!(sv.family.is_empty());
    let l0 = l0_greedy_k_cover(&empty, 3, &L0Config::new(16, 1));
    assert!(l0.family.is_empty());
}

/// A single-element universe: every algorithm returns one useful set.
#[test]
fn single_element_universe() {
    let edges: Vec<Edge> = (0..10u32).map(|s| Edge::new(s, 99u64)).collect();
    let stream = VecStream::new(10, edges);
    let res = k_cover_streaming(
        &stream,
        &KCoverConfig::new(3, 0.3, 2).with_sizing(SketchSizing::Budget(100)),
    );
    let inst = coverage_suite::stream::materialize(&stream);
    assert_eq!(inst.coverage(&res.family), 1);
    // Greedy stops after one set — the other nine add nothing.
    assert_eq!(res.family.len(), 1);
}

/// Distributed execution agrees with single-machine execution on the
/// same seeds for several workload shapes.
#[test]
fn distributed_agrees_with_local_across_workloads() {
    for seed in 0..4u64 {
        let inst = match seed % 2 {
            0 => uniform_instance(50, 4_000, 150, seed),
            _ => zipf_instance(50, 4_000, 0.5, 1.0, 400, seed),
        };
        let mut stream = VecStream::from_instance(&inst);
        ArrivalOrder::Random(seed).apply(stream.edges_mut());
        let local = distributed_k_cover(
            &stream,
            &DistConfig::new(1, 5, 0.3, 11).with_sizing(SketchSizing::Budget(1_200)),
        );
        let dist = distributed_k_cover(
            &stream,
            &DistConfig::new(6, 5, 0.3, 11).with_sizing(SketchSizing::Budget(1_200)),
        );
        assert_eq!(local.family, dist.family, "seed {seed}");
        assert_eq!(local.merged_edges, dist.merged_edges, "seed {seed}");
    }
}

/// The multipass driver's m-estimation path (no m hint) still produces
/// valid covers.
#[test]
fn multipass_with_estimated_m() {
    let p = planted_set_cover(25, 2_000, 5, 60, 3);
    let mut stream = VecStream::from_instance(&p.instance);
    ArrivalOrder::Random(1).apply(stream.edges_mut());
    let cfg = MultiPassConfig::new(3, 0.5, 5).with_sizing(SketchSizing::Budget(2_500));
    let res = set_cover_multipass(&stream, &cfg);
    assert!(p.instance.is_cover(&res.family));
    assert_eq!(res.passes, 1 + 2 * 2 + 1, "m-estimation adds one pass");
}

/// Space reports from all algorithms are internally consistent (edges ≤
/// total words, passes ≥ 1).
#[test]
fn space_reports_are_consistent() {
    let p = planted_k_cover(30, 3_000, 4, 120, 8);
    let mut stream = VecStream::from_instance(&p.instance);
    ArrivalOrder::Random(2).apply(stream.edges_mut());
    let mut set_stream = VecStream::from_instance(&p.instance);
    ArrivalOrder::SetGrouped(2).apply(set_stream.edges_mut());

    let reports = [
        k_cover_streaming(
            &stream,
            &KCoverConfig::new(4, 0.25, 3).with_sizing(SketchSizing::Budget(2_000)),
        )
        .space,
        saha_getoor_k_cover(&set_stream, 4).space,
        sieve_k_cover(&set_stream, 4, 0.2).space,
        store_all_k_cover(&stream, 4).space,
    ];
    for r in reports {
        assert!(r.passes >= 1);
        assert!(r.total_words() >= r.peak_edges);
    }
}
